#!/usr/bin/env bash
# mt_smoke.sh — end-to-end smoke test of the multithreaded workload plane
# and the port-filtering scheme family against a live daemon. Builds
# regsimd, regsimc, and checkresults, starts the daemon on a scratch port
# with a durable store, then drives the ISSUE 10 acceptance scenario:
#
#   * a T=4 multithreaded sweep mixing a port-filtering scheme
#     (port:16x2:p2) with an unported one (use:64x2) via POST /v1/sweep,
#   * checkresults validates the v3 document: per-thread stat blocks
#     reconcile with machine totals, port stalls only on ported schemes,
#   * a port × thread-count exploration (ports 0,2 × threads 1,2) via
#     POST /v1/explore, validated with checkresults -explore,
#   * warm re-submissions return byte-identical documents with zero new
#     simulations (runner memo),
#   * a SIGTERM drain, then a fresh daemon over the same store replays
#     both documents byte-identically with zero simulations ever run in
#     the new process (durable-store replay of v3 fingerprints).
#
# Artifacts (documents, metrics scrapes, daemon log) land in $OUTDIR.
set -euo pipefail

PORT="${PORT:-18745}"
OUTDIR="${OUTDIR:-/tmp/mt-smoke}"
BASE="http://127.0.0.1:${PORT}"
STORE="$OUTDIR/store"

mkdir -p "$OUTDIR"
go build -o "$OUTDIR/regsimd" ./cmd/regsimd
go build -o "$OUTDIR/regsimc" ./cmd/regsimc
go build -o "$OUTDIR/checkresults" ./cmd/checkresults

start_daemon() {
    "$OUTDIR/regsimd" -addr "127.0.0.1:${PORT}" -workers 2 -store "$STORE" >>"$OUTDIR/regsimd.log" 2>&1 &
    DAEMON=$!
    trap 'kill "$DAEMON" 2>/dev/null || true' EXIT
    for i in $(seq 1 50); do
        curl -fsS "$BASE/healthz" >/dev/null 2>&1 && return 0
        [ "$i" = 50 ] && { echo "daemon never became healthy"; cat "$OUTDIR/regsimd.log"; exit 1; }
        sleep 0.2
    done
}

stop_daemon() {
    kill -TERM "$DAEMON"
    for i in $(seq 1 100); do
        kill -0 "$DAEMON" 2>/dev/null || break
        [ "$i" = 100 ] && { echo "FAIL: daemon did not drain on SIGTERM"; exit 1; }
        sleep 0.2
    done
    trap - EXIT
    wait "$DAEMON" 2>/dev/null || true
}

# jobs_run scrapes the cumulative simulations-executed counter.
jobs_run() {
    curl -fsS "$BASE/metrics" | awk '$1 == "serve_runner_jobs_run" {print int($2)}'
}

mt_sweep() {
    "$OUTDIR/regsimc" submit -server "$BASE" \
        -benches gzip,mcf \
        -schemes port:16x2:p2,use:64x2 \
        -threads 4 -insts 12000 \
        -o "$1"
}

port_explore() {
    "$OUTDIR/regsimc" explore -server "$BASE" \
        -benches gzip \
        -entries 16,32 -ways 2 -index filtered \
        -ports 0,2 -threads 1,2 \
        -insts 4000 \
        -o "$1"
}

start_daemon

echo "== cold multithreaded sweep (T=4, ported + unported schemes)"
mt_sweep "$OUTDIR/mt.json" | tee "$OUTDIR/mt.out"
"$OUTDIR/checkresults" -benches gzip,mcf "$OUTDIR/mt.json"
grep -q '"threads": *4' "$OUTDIR/mt.json" \
    || { echo "FAIL: sweep document carries no thread count"; exit 1; }
grep -q '"thread_stats"' "$OUTDIR/mt.json" \
    || { echo "FAIL: sweep document carries no per-thread stat blocks"; exit 1; }
COLD_SWEEP=$(jobs_run)
[ "$COLD_SWEEP" -gt 0 ] || { echo "FAIL: cold sweep simulated nothing"; exit 1; }

echo "== cold port x thread exploration (8 candidates)"
port_explore "$OUTDIR/explore.json" | tee "$OUTDIR/explore.out"
grep -q "frontier (cheapest first):" "$OUTDIR/explore.out" \
    || { echo "FAIL: regsimc explore did not render a frontier table"; exit 1; }
"$OUTDIR/checkresults" -explore "$OUTDIR/explore.json"
COLD_ALL=$(jobs_run)
[ "$COLD_ALL" -gt "$COLD_SWEEP" ] || { echo "FAIL: cold exploration simulated nothing"; exit 1; }

echo "== warm re-submissions (memo: byte-identical, zero new simulations)"
mt_sweep "$OUTDIR/mt-warm.json" >/dev/null
cmp "$OUTDIR/mt.json" "$OUTDIR/mt-warm.json" \
    || { echo "FAIL: warm sweep is not byte-identical"; exit 1; }
port_explore "$OUTDIR/explore-warm.json" >/dev/null
cmp "$OUTDIR/explore.json" "$OUTDIR/explore-warm.json" \
    || { echo "FAIL: warm exploration is not byte-identical"; exit 1; }
WARM_ALL=$(jobs_run)
[ "$WARM_ALL" = "$COLD_ALL" ] \
    || { echo "FAIL: warm re-submissions ran $((WARM_ALL - COLD_ALL)) extra simulations"; exit 1; }

echo "== drain and restart over the same store"
stop_daemon
start_daemon

echo "== store replay (fresh process: byte-identical, zero simulations)"
mt_sweep "$OUTDIR/mt-replay.json" >/dev/null
cmp "$OUTDIR/mt.json" "$OUTDIR/mt-replay.json" \
    || { echo "FAIL: sweep store replay is not byte-identical"; exit 1; }
port_explore "$OUTDIR/explore-replay.json" >/dev/null
cmp "$OUTDIR/explore.json" "$OUTDIR/explore-replay.json" \
    || { echo "FAIL: exploration store replay is not byte-identical"; exit 1; }
REPLAY_RUN=$(jobs_run)
[ "$REPLAY_RUN" = 0 ] \
    || { echo "FAIL: fresh process re-simulated $REPLAY_RUN points instead of replaying the store"; exit 1; }

stop_daemon
echo "mt smoke: ok (artifacts in $OUTDIR)"
