#!/usr/bin/env bash
# explore_smoke.sh — end-to-end smoke test of the design-space
# exploration engine against a live daemon. Builds regsimd, regsimc, and
# checkresults, starts the daemon on a scratch port with a durable store,
# then drives the acceptance scenario:
#
#   * a 3-axis, 27-candidate successive-halving exploration submitted via
#     regsimc explore (the 96-evaluation schedule exceeds -sync-max, so
#     the CLI exercises the async job path: submit, poll, fetch, render),
#   * checkresults -explore validates the document: frontier recomputed
#     and non-dominated, every eliminated/dominated point with provenance,
#   * a warm re-submission returns a byte-identical document without one
#     additional simulation (runner memo),
#   * a SIGTERM drain, then a fresh daemon over the same store directory
#     replays the exploration byte-identically with zero simulations ever
#     run in the new process (durable-store replay).
#
# Artifacts (documents, metrics scrapes, daemon log) land in $OUTDIR for
# CI to upload.
set -euo pipefail

PORT="${PORT:-18743}"
OUTDIR="${OUTDIR:-/tmp/explore-smoke}"
BASE="http://127.0.0.1:${PORT}"
STORE="$OUTDIR/store"

mkdir -p "$OUTDIR"
go build -o "$OUTDIR/regsimd" ./cmd/regsimd
go build -o "$OUTDIR/regsimc" ./cmd/regsimc
go build -o "$OUTDIR/checkresults" ./cmd/checkresults

start_daemon() {
    "$OUTDIR/regsimd" -addr "127.0.0.1:${PORT}" -workers 2 -store "$STORE" >>"$OUTDIR/regsimd.log" 2>&1 &
    DAEMON=$!
    trap 'kill "$DAEMON" 2>/dev/null || true' EXIT
    for i in $(seq 1 50); do
        curl -fsS "$BASE/healthz" >/dev/null 2>&1 && return 0
        [ "$i" = 50 ] && { echo "daemon never became healthy"; cat "$OUTDIR/regsimd.log"; exit 1; }
        sleep 0.2
    done
}

stop_daemon() {
    kill -TERM "$DAEMON"
    for i in $(seq 1 100); do
        kill -0 "$DAEMON" 2>/dev/null || break
        [ "$i" = 100 ] && { echo "FAIL: daemon did not drain on SIGTERM"; exit 1; }
        sleep 0.2
    done
    trap - EXIT
    wait "$DAEMON" 2>/dev/null || true
}

# jobs_run scrapes the cumulative simulations-executed counter.
jobs_run() {
    curl -fsS "$BASE/metrics" | awk '$1 == "serve_runner_jobs_run" {print int($2)}'
}

explore() {
    "$OUTDIR/regsimc" explore -server "$BASE" \
        -benches gzip,mcf \
        -entries 16,32,64 -ways 1,2,4 -index preg,rr,filtered \
        -strategy halving -insts 6000 -min-insts 1500 \
        -o "$1"
}

start_daemon

echo "== cold exploration (27 candidates, halving, async job path)"
explore "$OUTDIR/explore.json" | tee "$OUTDIR/explore.out"
grep -q "frontier (cheapest first):" "$OUTDIR/explore.out" \
    || { echo "FAIL: regsimc explore did not render a frontier table"; exit 1; }
grep -qE "on frontier, [0-9]+ dominated" "$OUTDIR/explore.out" \
    || { echo "FAIL: regsimc explore did not render the domination summary"; exit 1; }
"$OUTDIR/checkresults" -explore "$OUTDIR/explore.json"
COLD_RUN=$(jobs_run)
[ "$COLD_RUN" -gt 0 ] || { echo "FAIL: cold exploration simulated nothing"; exit 1; }

echo "== warm re-submission (memo: byte-identical, zero new simulations)"
explore "$OUTDIR/explore-warm.json" >/dev/null
cmp "$OUTDIR/explore.json" "$OUTDIR/explore-warm.json" \
    || { echo "FAIL: warm re-submission is not byte-identical"; exit 1; }
WARM_RUN=$(jobs_run)
[ "$WARM_RUN" = "$COLD_RUN" ] \
    || { echo "FAIL: warm re-submission ran $((WARM_RUN - COLD_RUN)) extra simulations"; exit 1; }

echo "== drain and restart over the same store"
stop_daemon
start_daemon

echo "== store replay (fresh process: byte-identical, zero simulations)"
explore "$OUTDIR/explore-replay.json" >/dev/null
cmp "$OUTDIR/explore.json" "$OUTDIR/explore-replay.json" \
    || { echo "FAIL: store replay is not byte-identical"; exit 1; }
REPLAY_RUN=$(jobs_run)
[ "$REPLAY_RUN" = 0 ] \
    || { echo "FAIL: fresh process re-simulated $REPLAY_RUN points instead of replaying the store"; exit 1; }

curl -fsS "$BASE/metrics" >"$OUTDIR/metrics.txt"
"$OUTDIR/checkresults" -prom "$OUTDIR/metrics.txt" \
    -require serve_explore_accepted,serve_explore_candidates,serve_explore_rungs,serve_explore_frontier_size

stop_daemon
echo "explore smoke: ok (artifacts in $OUTDIR)"
