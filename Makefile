# Build / test entry points. `make ci` is what the CI workflow runs: the
# race detector covers the run layer's worker pool and memoization, the
# bench smoke step compiles and runs every benchmark once, and the json
# check round-trips a -json results file through the schema validator.

GO ?= go

.PHONY: ci vet build test race bench bench-smoke json-check experiments

ci: vet build race bench-smoke json-check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# One iteration of every benchmark, no unit tests: catches benchmarks that
# no longer compile or crash without paying for real measurement.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Emit a -json results file and validate it parses with the current schema.
json-check:
	$(GO) run ./cmd/regsim -bench gzip -n 20000 -json /tmp/regsim-ci.json > /dev/null
	$(GO) run ./cmd/checkresults /tmp/regsim-ci.json

experiments:
	$(GO) run ./cmd/experiments -quick -v
