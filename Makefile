# Build / test entry points. `make ci` is what the CI workflow runs: the
# race detector covers the run layer's worker pool and memoization, the
# bench smoke step compiles and runs every benchmark once, and the json
# check round-trips a -json results file through the schema validator.

GO ?= go

.PHONY: ci vet build test race bench bench-smoke bench-json alloc-gate json-check experiments fuzz-smoke cover cover-gate

ci: vet build race bench-smoke alloc-gate json-check fuzz-smoke cover-gate

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# One iteration of every benchmark, no unit tests: catches benchmarks that
# no longer compile or crash without paying for real measurement.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .
	$(GO) test -bench=. -benchtime=100x -run='^$$' ./internal/pipeline

# The zero-allocation gates for the steady-state cycle loop (all schemes).
alloc-gate:
	$(GO) test -run='TestCycleLoopZeroAlloc' -count=1 -v ./internal/pipeline

# Measure the simulator performance trajectory and write it to
# BENCH_pipeline.json as a go-test JSON event stream: end-to-end throughput
# and the run layer from the root package, per-cycle and per-stage numbers
# from the pipeline package. Commit the refreshed file to record a baseline.
bench-json:
	$(GO) test -run='^$$' -bench='BenchmarkSimulatorThroughput|BenchmarkRunnerColdSuite' \
		-benchtime=3x -benchmem -json . > BENCH_pipeline.json
	$(GO) test -run='^$$' -bench='BenchmarkCycleSteadyState|BenchmarkStageBreakdown' \
		-benchtime=100000x -benchmem -json ./internal/pipeline >> BENCH_pipeline.json

# Emit a -json results file and validate it parses with the current schema.
json-check:
	$(GO) run ./cmd/regsim -bench gzip -n 20000 -json /tmp/regsim-ci.json > /dev/null
	$(GO) run ./cmd/checkresults /tmp/regsim-ci.json

experiments:
	$(GO) run ./cmd/experiments -quick -v

# Short coverage-guided fuzz runs of the two generative surfaces: the ISA
# evaluators (arbitrary selectors/operands) and the program generator
# (arbitrary profiles through generate -> validate -> execute). Regressions
# land as crashers here long before they corrupt a simulation. The committed
# corpora under testdata/fuzz/ replay on every plain `go test` run too.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzExec$$' -fuzztime=10s ./internal/isa
	$(GO) test -run='^$$' -fuzz='^FuzzProgramGenerate$$' -fuzztime=10s ./internal/prog

# Whole-module statement coverage. The floor is the measured baseline at the
# time the gate was added minus one point; raise it when coverage rises,
# never lower it to make a PR pass.
COVER_FLOOR ?= 80.8

cover:
	$(GO) test -count=1 -coverprofile=coverage.out -coverpkg=./... ./...
	$(GO) tool cover -func=coverage.out | tail -1

cover-gate: cover
	@total=$$($(GO) tool cover -func=coverage.out | tail -1 | awk '{print $$NF}' | tr -d '%'); \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { \
		if (t+0 < f+0) { printf "FAIL: coverage %.1f%% below floor %.1f%%\n", t, f; exit 1 } \
		printf "coverage %.1f%% >= floor %.1f%%\n", t, f }'
