# Build / test entry points. `make ci` is what the CI workflow runs: the
# race detector covers the run layer's worker pool and memoization, the
# bench smoke step compiles and runs every benchmark once, and the json
# check round-trips a -json results file through the schema validator.

GO ?= go

.PHONY: ci vet build test race bench bench-smoke bench-json alloc-gate json-check experiments fuzz-smoke cover cover-gate telemetry-smoke explore-smoke mt-smoke fleet-check

ci: vet build race bench-smoke alloc-gate json-check fuzz-smoke cover-gate telemetry-smoke explore-smoke mt-smoke fleet-check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# One iteration of every benchmark, no unit tests: catches benchmarks that
# no longer compile or crash without paying for real measurement.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .
	$(GO) test -bench=. -benchtime=100x -run='^$$' ./internal/pipeline

# The zero-allocation gates for the steady-state cycle loop (all schemes).
alloc-gate:
	$(GO) test -run='TestCycleLoopZeroAlloc' -count=1 -v ./internal/pipeline

# Measure the simulator performance trajectory and write it to
# BENCH_pipeline.json as a go-test JSON event stream: end-to-end throughput
# and the run layer from the root package, per-cycle and per-stage numbers
# from the pipeline package. The durable-store path (append, lookup, warm
# restart through the runner) lands in BENCH_store.json. Commit the
# refreshed files to record a baseline.
bench-json:
	$(GO) test -run='^$$' -bench='BenchmarkSimulatorThroughput|BenchmarkRunnerColdSuite|BenchmarkIntervalThroughput' \
		-benchtime=3x -benchmem -json . > BENCH_pipeline.json
	$(GO) test -run='^$$' -bench='BenchmarkCycleSteadyState|BenchmarkStageBreakdown' \
		-benchtime=100000x -benchmem -json ./internal/pipeline >> BENCH_pipeline.json
	$(GO) test -run='^$$' -bench='BenchmarkStoreAppend|BenchmarkStoreLookup' \
		-benchtime=2000x -benchmem -json . > BENCH_store.json
	$(GO) test -run='^$$' -bench='BenchmarkRunnerWarmStore' \
		-benchtime=10x -benchmem -json . >> BENCH_store.json
	$(GO) test -run='^$$' -bench='BenchmarkFleetScatterGather' \
		-benchtime=3x -json ./internal/fleet > BENCH_fleet.json

# Run the 3-node cluster E2E with its merged document exported, then pin
# it to the exact requested matrix with checkresults: full scheme × bench
# coverage, no duplicate points (a hedge that raced its primary must not
# leak both copies), no runs outside the matrix.
FLEET_ARTIFACT ?= /tmp/regsim-fleet-merged.json

fleet-check:
	REGSIM_FLEET_ARTIFACT=$(FLEET_ARTIFACT) $(GO) test -count=1 -run 'TestClusterByteStable' ./internal/fleet
	$(GO) run ./cmd/checkresults -benches gzip,gcc,mcf,twolf \
		-schemes use-16x2-filtered,rf-3cyc $(FLEET_ARTIFACT)

# Emit a -json results file and validate it parses with the current schema.
json-check:
	$(GO) run ./cmd/regsim -bench gzip -n 20000 -json /tmp/regsim-ci.json > /dev/null
	$(GO) run ./cmd/checkresults /tmp/regsim-ci.json

experiments:
	$(GO) run ./cmd/experiments -quick -v

# End-to-end smoke of the telemetry plane against a live daemon: one
# traced sweep with a known X-Request-Id, then /metrics and /debug/flight
# validated through checkresults. Artifacts land in /tmp/telemetry-smoke
# (override with OUTDIR=).
telemetry-smoke:
	./scripts/telemetry_smoke.sh

# End-to-end smoke of the design-space exploration engine: a 27-candidate
# successive-halving search through regsimc explore and the async job
# path, validated with checkresults -explore, then replayed warm (memo)
# and across a daemon restart (durable store) — both byte-identical with
# zero re-simulation. Artifacts land in /tmp/explore-smoke (OUTDIR=).
explore-smoke:
	./scripts/explore_smoke.sh

# End-to-end smoke of the multithreaded workload plane and port-filtering
# scheme family: a T=4 sweep mixing ported and unported schemes plus a
# ports x threads exploration through a live daemon, each validated with
# checkresults, replayed warm (memo) and across a daemon restart (durable
# store v3 fingerprints) byte-identically with zero re-simulation.
# Artifacts land in /tmp/mt-smoke (OUTDIR=).
mt-smoke:
	./scripts/mt_smoke.sh

# Short coverage-guided fuzz runs of the generative and parsing surfaces:
# the ISA evaluators (arbitrary selectors/operands), the program generator
# (arbitrary profiles through generate -> validate -> execute, including
# the per-context ThreadProfile derivation), the durable store's record
# decoder (arbitrary segment bytes through the crash-recovery scanner),
# the explore-spec parser (ports/threads axes included), and the compact
# scheme-spec grammar (port-filtering modifiers and kinds). Regressions
# land as crashers here long before they corrupt a simulation. The
# committed corpora under testdata/fuzz/ replay on every plain `go test`
# run too.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzExec$$' -fuzztime=10s ./internal/isa
	$(GO) test -run='^$$' -fuzz='^FuzzProgramGenerate$$' -fuzztime=10s ./internal/prog
	$(GO) test -run='^$$' -fuzz='^FuzzStoreDecode$$' -fuzztime=10s ./internal/store
	$(GO) test -run='^$$' -fuzz='^FuzzExploreSpec$$' -fuzztime=10s ./internal/explore
	$(GO) test -run='^$$' -fuzz='^FuzzSchemeSpec$$' -fuzztime=10s ./internal/sim

# Whole-module statement coverage. The floor trails the measured baseline
# (81.9% when the exploration engine landed) by a small margin; raise it
# when coverage rises, never lower it to make a PR pass.
COVER_FLOOR ?= 81.5

cover:
	$(GO) test -count=1 -coverprofile=coverage.out -coverpkg=./... ./...
	$(GO) tool cover -func=coverage.out | tail -1

cover-gate: cover
	@total=$$($(GO) tool cover -func=coverage.out | tail -1 | awk '{print $$NF}' | tr -d '%'); \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { \
		if (t+0 < f+0) { printf "FAIL: coverage %.1f%% below floor %.1f%%\n", t, f; exit 1 } \
		printf "coverage %.1f%% >= floor %.1f%%\n", t, f }'
