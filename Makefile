# Build / test entry points. `make ci` is what the CI workflow runs: the
# race detector covers the run layer's worker pool and memoization, the
# bench smoke step compiles and runs every benchmark once, and the json
# check round-trips a -json results file through the schema validator.

GO ?= go

.PHONY: ci vet build test race bench bench-smoke bench-json alloc-gate json-check experiments

ci: vet build race bench-smoke alloc-gate json-check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# One iteration of every benchmark, no unit tests: catches benchmarks that
# no longer compile or crash without paying for real measurement.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .
	$(GO) test -bench=. -benchtime=100x -run='^$$' ./internal/pipeline

# The zero-allocation gates for the steady-state cycle loop (all schemes).
alloc-gate:
	$(GO) test -run='TestCycleLoopZeroAlloc' -count=1 -v ./internal/pipeline

# Measure the simulator performance trajectory and write it to
# BENCH_pipeline.json as a go-test JSON event stream: end-to-end throughput
# and the run layer from the root package, per-cycle and per-stage numbers
# from the pipeline package. Commit the refreshed file to record a baseline.
bench-json:
	$(GO) test -run='^$$' -bench='BenchmarkSimulatorThroughput|BenchmarkRunnerColdSuite' \
		-benchtime=3x -benchmem -json . > BENCH_pipeline.json
	$(GO) test -run='^$$' -bench='BenchmarkCycleSteadyState|BenchmarkStageBreakdown' \
		-benchtime=100000x -benchmem -json ./internal/pipeline >> BENCH_pipeline.json

# Emit a -json results file and validate it parses with the current schema.
json-check:
	$(GO) run ./cmd/regsim -bench gzip -n 20000 -json /tmp/regsim-ci.json > /dev/null
	$(GO) run ./cmd/checkresults /tmp/regsim-ci.json

experiments:
	$(GO) run ./cmd/experiments -quick -v
