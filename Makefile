# Build / test entry points. `make ci` is what the CI workflow runs: the
# race detector covers the run layer's worker pool and memoization.

GO ?= go

.PHONY: ci vet build test race bench experiments

ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

experiments:
	$(GO) run ./cmd/experiments -quick -v
