// Command tracegen generates the synthetic benchmark programs and reports
// their static shape and dynamic characteristics: operation mix, degree-of-
// use distribution, branch behaviour, and memory footprint. It is the tool
// for validating that the workload suite has the statistical properties the
// register-caching study depends on (see DESIGN.md).
//
// Usage:
//
//	tracegen                  # characterize the whole suite
//	tracegen -bench mcf       # one benchmark
//	tracegen -n 1000000       # more dynamic instructions
//	tracegen -dis -bench gzip # disassemble the first instructions
package main

import (
	"flag"
	"fmt"
	"os"

	"regcache/internal/isa"
	"regcache/internal/prog"
)

func main() {
	var (
		bench = flag.String("bench", "all", "benchmark name or 'all'")
		n     = flag.Uint64("n", 300_000, "dynamic instructions to characterize")
		dis   = flag.Int("dis", 0, "disassemble the first N static instructions")
	)
	flag.Parse()

	benches := []string{*bench}
	if *bench == "all" {
		benches = prog.ProfileNames()
	}
	for _, name := range benches {
		prof, ok := prog.ProfileByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", name)
			os.Exit(2)
		}
		p, err := prog.Generate(prof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d static instructions\n", name, p.NumInsts())
		if *dis > 0 {
			for i := 0; i < *dis && i < p.NumInsts(); i++ {
				in := p.InstAt(prog.CodeBase + uint64(i)*isa.InstBytes)
				fmt.Printf("  %s\n", in)
			}
		}
		c := prog.Characterize(p, *n)
		fmt.Print(c)
		fmt.Println()
	}
}
