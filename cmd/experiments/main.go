// Command experiments regenerates the paper's evaluation: every figure and
// table of Section 5, printed as text tables with the paper's claims
// alongside the measured results. EXPERIMENTS.md is written from this
// program's output.
//
// All simulations execute through internal/sim's shared run layer: a
// bounded worker pool with a memoizing result cache, so shared baselines
// (e.g. the 3-cycle monolithic file) simulate once per process no matter
// how many figures reference them.
//
// Usage:
//
//	experiments               # full suite, default budget (slow)
//	experiments -quick        # 4 benchmarks, reduced budget
//	experiments -run fig8     # one experiment
//	experiments -n 500000     # raise the per-benchmark budget
//	experiments -v            # print run-layer metrics per experiment
//	experiments -workers 4    # bound the simulation worker pool
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"regcache/internal/experiments"
	"regcache/internal/sim"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "run 4 representative benchmarks at a reduced budget")
		run     = flag.String("run", "", "comma-separated experiment ids (default: all; available: "+strings.Join(experiments.IDs(), ",")+")")
		n       = flag.Uint64("n", 0, "per-benchmark instruction budget override")
		verbose = flag.Bool("v", false, "print run-layer metrics (jobs run, cache hits, wall time) per experiment")
		workers = flag.Int("workers", 0, "simulation worker pool size (0 = runtime.NumCPU())")
	)
	flag.Parse()

	if err := sim.ConfigureDefaultRunner(*workers); err != nil {
		fmt.Fprintf(os.Stderr, "configuring runner: %v\n", err)
		os.Exit(2)
	}

	opts := experiments.Options{}
	if *quick {
		opts = experiments.Quick()
	}
	if *n != 0 {
		opts.Insts = *n
	}

	ids := experiments.IDs()
	if *run != "" {
		ids = strings.Split(*run, ",")
	}
	runner := sim.DefaultRunner()
	total := time.Now()
	for _, id := range ids {
		e, ok := experiments.ByID(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (available: %s)\n",
				id, strings.Join(experiments.IDs(), ","))
			os.Exit(2)
		}
		start := time.Now()
		before := runner.Stats()
		rep, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Print(rep)
		fmt.Printf("(%s in %.1fs)\n", e.ID, time.Since(start).Seconds())
		if *verbose {
			fmt.Printf("(run layer: %s)\n", runner.Stats().Sub(before))
		}
		fmt.Println()
	}
	if *verbose {
		st := runner.Stats()
		fmt.Printf("run layer totals: %s over %d workers, %.1fs elapsed\n",
			st, runner.Workers(), time.Since(total).Seconds())
	}
}
