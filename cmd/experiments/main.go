// Command experiments regenerates the paper's evaluation: every figure and
// table of Section 5, printed as text tables with the paper's claims
// alongside the measured results. EXPERIMENTS.md is written from this
// program's output.
//
// All simulations execute through internal/sim's shared run layer: a
// bounded worker pool with a memoizing result cache, so shared baselines
// (e.g. the 3-cycle monolithic file) simulate once per process no matter
// how many figures reference them.
//
// Usage:
//
//	experiments               # full suite, default budget (slow)
//	experiments -quick        # 4 benchmarks, reduced budget
//	experiments -run fig8     # one experiment
//	experiments -n 500000     # raise the per-benchmark budget
//	experiments -v            # print run-layer metrics per experiment
//	experiments -workers 4    # bound the simulation worker pool
//	experiments -json out.json  # export every simulated run, machine-readable
//	experiments -progress 5s  # heartbeat with job counts and ETA on stderr
//	experiments -http :6060   # expvar metrics + pprof while running
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"regcache/internal/experiments"
	"regcache/internal/obs"
	"regcache/internal/sim"
	"regcache/internal/store"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "run 4 representative benchmarks at a reduced budget")
		run      = flag.String("run", "", "comma-separated experiment ids (default: all; available: "+strings.Join(experiments.IDs(), ",")+")")
		n        = flag.Uint64("n", 0, "per-benchmark instruction budget override")
		verbose  = flag.Bool("v", false, "print run-layer metrics (jobs run, cache hits, wall time) per experiment")
		workers  = flag.Int("workers", runtime.NumCPU(), "simulation worker pool size (must be >= 1)")
		jsonOut  = flag.String("json", "", "write every simulated run to this file, machine-readable")
		progress = flag.Duration("progress", 0, "print a heartbeat (jobs done, hit rate, ETA) to stderr at this interval (e.g. 5s; 0 = off)")
		httpAddr = flag.String("http", "", "serve expvar metrics and pprof on this address (e.g. :6060)")
		storeDir = flag.String("store", "", "durable result store directory; repeated suite runs replay finished points from disk")
	)
	flag.Parse()

	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "invalid -workers %d: the pool needs at least one worker\n", *workers)
		flag.Usage()
		os.Exit(2)
	}
	if err := sim.ConfigureDefaultRunner(*workers); err != nil {
		fmt.Fprintf(os.Stderr, "configuring runner: %v\n", err)
		os.Exit(2)
	}
	runner := sim.DefaultRunner()
	var rstore *sim.ResultStore
	if *storeDir != "" {
		rs, err := sim.OpenResultStore(*storeDir, store.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "opening store: %v\n", err)
			os.Exit(2)
		}
		if err := runner.UseStore(rs); err != nil {
			fmt.Fprintf(os.Stderr, "attaching store: %v\n", err)
			os.Exit(2)
		}
		rstore = rs
		defer func() {
			// Drain queued store appends and release the writer lock so an
			// interrupted-then-rerun suite resumes from everything finished.
			runner.Close()
			if err := rstore.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "closing store: %v\n", err)
			}
		}()
	}

	if *httpAddr != "" {
		dbg, err := obs.StartDebugServer(*httpAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
		runner.RegisterMetrics(obs.Default(), "runner")
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/vars (pprof at /debug/pprof/, metrics at /metrics)\n", dbg.Addr())
	}
	if *progress > 0 {
		stop := startHeartbeat(runner, *progress)
		defer stop()
	}

	opts := experiments.Options{}
	if *quick {
		opts = experiments.Quick()
	}
	if *n != 0 {
		opts.Insts = *n
	}

	ids := experiments.IDs()
	if *run != "" {
		ids = strings.Split(*run, ",")
	}
	total := time.Now()
	for _, id := range ids {
		e, ok := experiments.ByID(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (available: %s)\n",
				id, strings.Join(experiments.IDs(), ","))
			os.Exit(2)
		}
		start := time.Now()
		before := runner.Stats()
		rep, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Print(rep)
		fmt.Printf("(%s in %.1fs)\n", e.ID, time.Since(start).Seconds())
		if *verbose {
			fmt.Printf("(run layer: %s)\n", runner.Stats().Sub(before))
		}
		fmt.Println()
	}
	if *verbose {
		st := runner.Stats()
		fmt.Printf("run layer totals: %s over %d workers, %.1fs elapsed\n",
			st, runner.Workers(), time.Since(total).Seconds())
		fmt.Printf("workload cache: %s\n", runner.Workloads().Stats())
	}
	if *jsonOut != "" {
		f := sim.NewResultsFile("experiments", sim.RunnerRecords(runner), runner, time.Since(total))
		if err := sim.WriteResults(*jsonOut, f); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d runs)\n", *jsonOut, len(f.Runs))
	}
}

// startHeartbeat periodically reports run-layer progress on stderr:
// completed and outstanding simulations, memo hit rate, and an ETA
// extrapolated from the mean simulation wall time so far spread over the
// worker pool. Returns a function that stops the ticker.
func startHeartbeat(r *sim.Runner, every time.Duration) func() {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				st := r.Stats()
				open := r.Open()
				line := fmt.Sprintf("progress: %d jobs done, %d outstanding", st.JobsRun, open)
				if lookups := st.JobsRun + st.CacheHits; lookups > 0 {
					line += fmt.Sprintf(", memo hit rate %.0f%%", 100*float64(st.CacheHits)/float64(lookups))
				}
				if st.JobsRun > 0 && open > 0 {
					perJob := st.SimWall / time.Duration(st.JobsRun)
					eta := perJob * time.Duration(open) / time.Duration(r.Workers())
					line += fmt.Sprintf(", eta ~%s", eta.Round(time.Second))
				}
				fmt.Fprintln(os.Stderr, line)
			}
		}
	}()
	return func() { close(done) }
}
