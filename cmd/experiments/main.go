// Command experiments regenerates the paper's evaluation: every figure and
// table of Section 5, printed as text tables with the paper's claims
// alongside the measured results. EXPERIMENTS.md is written from this
// program's output.
//
// Usage:
//
//	experiments              # full suite, default budget (slow)
//	experiments -quick       # 4 benchmarks, reduced budget
//	experiments -run fig8    # one experiment
//	experiments -n 500000    # raise the per-benchmark budget
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"regcache/internal/experiments"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "run 4 representative benchmarks at a reduced budget")
		run   = flag.String("run", "", "comma-separated experiment ids (default: all; available: "+strings.Join(experiments.IDs(), ",")+")")
		n     = flag.Uint64("n", 0, "per-benchmark instruction budget override")
	)
	flag.Parse()

	opts := experiments.Options{}
	if *quick {
		opts = experiments.Quick()
	}
	if *n != 0 {
		opts.Insts = *n
	}

	ids := experiments.IDs()
	if *run != "" {
		ids = strings.Split(*run, ",")
	}
	for _, id := range ids {
		e, ok := experiments.ByID(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (available: %s)\n",
				id, strings.Join(experiments.IDs(), ","))
			os.Exit(2)
		}
		start := time.Now()
		rep, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Print(rep)
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
}
