package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"regcache/internal/explore"
	"regcache/internal/sim"
)

// validExploreDoc runs the real engine against a synthetic evaluator and
// returns the marshalled document — the same shape a daemon serves.
func validExploreDoc(t *testing.T) []byte {
	t.Helper()
	spec := explore.Spec{
		Space: explore.Space{
			Entries: explore.Axis{Values: []int{8, 16, 32, 64}},
			Ways:    explore.Axis{Values: []int{1}},
			Index:   []string{"preg", "filtered"},
		},
		Strategy: explore.StrategyHalving,
		Insts:    4000,
		MinInsts: 1000,
	}
	res, err := explore.Run(context.Background(), explore.Config{
		Spec:    spec,
		Benches: []string{"gzip"},
		Eval: func(ctx context.Context, cands []explore.Candidate, insts uint64) (*sim.ResultsFile, error) {
			var runs []sim.RunRecord
			for _, c := range cands {
				sc := c.Scheme
				// Filtered indexing scores a bonus at identical cost, so the
				// preg twin of every surviving size ends up dominated — the
				// tampering case below needs at least one dominated point.
				ipc := float64(sc.Cache.Entries)
				if strings.HasSuffix(sc.Name, "-filtered") {
					ipc++
				}
				runs = append(runs, sim.RunRecord{
					Scheme: sim.NewSchemeRecord(sc), Bench: "gzip", Insts: insts,
					Cycles: 1, Retired: 1, IPC: ipc,
				})
			}
			return &sim.ResultsFile{SchemaVersion: sim.ResultsSchemaVersion, Generator: "test", Runs: runs}, nil
		},
	})
	if err != nil {
		t.Fatalf("explore.Run: %v", err)
	}
	res.Generator = "test"
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func writeTemp(t *testing.T, name string, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckExplore(t *testing.T) {
	doc := validExploreDoc(t)
	if err := checkExplore(writeTemp(t, "ok.json", doc)); err != nil {
		t.Errorf("valid document rejected: %v", err)
	}

	if err := checkExplore(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
	if err := checkExplore(writeTemp(t, "garbage.json", []byte("not json"))); err == nil {
		t.Error("unparseable document accepted")
	}

	// Tamper with the frontier: promoting a dominated point must fail the
	// recomputed-frontier check.
	var res explore.Result
	if err := json.Unmarshal(doc, &res); err != nil {
		t.Fatal(err)
	}
	promoted := false
	for i := range res.Points {
		if res.Points[i].Status == explore.StatusDominated {
			res.Points[i].Status = explore.StatusFrontier
			res.Points[i].DominatedBy = -1
			res.Frontier = append(res.Frontier, i)
			promoted = true
			break
		}
	}
	if !promoted {
		t.Fatal("synthetic document has no dominated point to promote")
	}
	tampered, err := json.Marshal(&res)
	if err != nil {
		t.Fatal(err)
	}
	if err := checkExplore(writeTemp(t, "tampered.json", tampered)); err == nil {
		t.Error("tampered frontier accepted")
	}
}
