// Command checkresults validates -json results files: they must parse,
// carry a supported schema version, and contain self-consistent runs with
// no duplicate (scheme, bench, options) points — the invariant a fleet
// gather must preserve. Schema v3 multithreaded runs must additionally
// reconcile their per-context stats blocks against the machine totals
// (retired instructions and port-conflict stalls sum across threads,
// per-thread cache reads split into hits + misses), and port-conflict
// stalls may be nonzero only on port-filtering schemes. With -benches/-schemes it additionally pins the
// document to the requested matrix (full coverage, no extras), which CI
// runs against the cluster E2E artifact. It also guards archived results
// before analysis scripts consume them.
//
// Beyond results files it validates the two telemetry documents the
// daemon serves, so the CI smoke job can assert their shape from the
// shell: -prom checks a /metrics scrape for well-formed Prometheus text
// exposition (and optionally for required metric names), -flight checks
// a /debug/flight dump for a well-formed trace/event document (and
// optionally for a specific request ID with a required span path).
//
// -explore validates a design-space exploration document (a POST
// /v1/explore response): schema version, rung schedule consistency,
// per-point provenance, and a recomputed Pareto frontier that must match
// the document's — the acceptance check the explore smoke job runs.
//
// Usage:
//
//	checkresults out.json [more.json ...]
//	checkresults -benches gzip,mcf -schemes use-16x2-filtered,rf-3cyc merged.json
//	checkresults -prom metrics.txt -require serve_sweeps_accepted,runner_jobs_run
//	checkresults -flight flight.json -request-id r-1234 -spans sweep,admission,point,simulate
//	checkresults -explore explore.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"regcache/internal/explore"
	"regcache/internal/obs"
	"regcache/internal/sim"
)

func main() {
	var (
		prom      = flag.String("prom", "", "validate a Prometheus text-exposition file (a /metrics scrape)")
		require   = flag.String("require", "", "comma-separated metric names that must appear in the -prom file")
		flight    = flag.String("flight", "", "validate a flight-recorder dump (a /debug/flight response)")
		explFile  = flag.String("explore", "", "validate a design-space exploration document (a /v1/explore response)")
		requestID = flag.String("request-id", "", "require the -flight dump to contain a trace with this request ID")
		spans     = flag.String("spans", "", "comma-separated span names that must all appear in the matched trace")
		benches   = flag.String("benches", "", "comma-separated benchmarks the results file must cover (with -schemes: the full matrix, no extras)")
		schemeStr = flag.String("schemes", "", "comma-separated scheme names the results file must cover")
	)
	flag.Parse()

	if *prom != "" || *flight != "" || *explFile != "" {
		exit := 0
		if *prom != "" {
			if err := checkProm(*prom, splitList(*require)); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", *prom, err)
				exit = 1
			} else {
				fmt.Printf("%s: ok (prometheus exposition)\n", *prom)
			}
		}
		if *flight != "" {
			if err := checkFlight(*flight, *requestID, splitList(*spans)); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", *flight, err)
				exit = 1
			} else {
				fmt.Printf("%s: ok (flight dump)\n", *flight)
			}
		}
		if *explFile != "" {
			if err := checkExplore(*explFile); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", *explFile, err)
				exit = 1
			}
		}
		os.Exit(exit)
	}

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: checkresults <results.json> [...] | -prom FILE [-require a,b] | -flight FILE [-request-id ID -spans a,b]")
		os.Exit(2)
	}
	exit := 0
	for _, path := range flag.Args() {
		f, err := sim.ReadResults(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			exit = 1
			continue
		}
		if err := check(f); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			exit = 1
			continue
		}
		if err := checkMatrix(f, splitList(*benches), splitList(*schemeStr)); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			exit = 1
			continue
		}
		fmt.Printf("%s: ok (schema v%d, %s, %d runs)\n", path, f.SchemaVersion, f.Generator, len(f.Runs))
	}
	os.Exit(exit)
}

// check applies cross-field consistency rules a well-formed export obeys.
func check(f *sim.ResultsFile) error {
	if len(f.Runs) == 0 {
		return fmt.Errorf("no runs")
	}
	// No two runs may describe the same (scheme, bench, options) point —
	// the invariant a fleet gather must preserve (a hedge that raced its
	// primary must not leak both copies into the merged document).
	seen := make(map[string]int, len(f.Runs))
	for i, r := range f.Runs {
		id := sim.RunIdentity(r)
		if j, dup := seen[id]; dup {
			return fmt.Errorf("runs %d and %d: duplicate point %s/%s (same scheme, bench, and options)",
				j, i, r.Scheme.Name, r.Bench)
		}
		seen[id] = i
	}
	for i, r := range f.Runs {
		if r.Bench == "" || r.Scheme.Name == "" || r.Scheme.Kind == "" {
			return fmt.Errorf("run %d: missing identity fields (%+v)", i, r)
		}
		if r.Cycles == 0 || r.Retired == 0 || r.IPC <= 0 {
			return fmt.Errorf("run %d (%s/%s): empty performance fields", i, r.Scheme.Name, r.Bench)
		}
		if c := r.Cache; c != nil {
			if c.Hits+c.Misses != c.Reads {
				return fmt.Errorf("run %d (%s/%s): hits %d + misses %d != reads %d",
					i, r.Scheme.Name, r.Bench, c.Hits, c.Misses, c.Reads)
			}
			if c.MissFiltered+c.MissCapacity+c.MissConflict != c.Misses {
				return fmt.Errorf("run %d (%s/%s): miss split does not sum to %d misses",
					i, r.Scheme.Name, r.Bench, c.Misses)
			}
			if c.InitialWrites+c.Fills != c.Writes {
				return fmt.Errorf("run %d (%s/%s): initial %d + fills %d != writes %d",
					i, r.Scheme.Name, r.Bench, c.InitialWrites, c.Fills, c.Writes)
			}
		}
		// Schema v3: multithreaded runs carry a per-context stats block
		// that must reconcile with the machine totals; single-context
		// runs must not carry one (v1/v2 documents never do).
		if r.Threads < 0 || r.Threads == 1 {
			return fmt.Errorf("run %d (%s/%s): thread count %d (recorded only when > 1)",
				i, r.Scheme.Name, r.Bench, r.Threads)
		}
		if r.Threads > 1 {
			if len(r.ThreadStats) != r.Threads {
				return fmt.Errorf("run %d (%s/%s): %d thread-stat blocks for %d threads",
					i, r.Scheme.Name, r.Bench, len(r.ThreadStats), r.Threads)
			}
		} else if len(r.ThreadStats) > 0 {
			return fmt.Errorf("run %d (%s/%s): single-context run carries %d thread-stat blocks",
				i, r.Scheme.Name, r.Bench, len(r.ThreadStats))
		}
		var sumRetired, sumStalls uint64
		for k, ts := range r.ThreadStats {
			if ts.Thread != k {
				return fmt.Errorf("run %d (%s/%s): thread block %d labelled %d",
					i, r.Scheme.Name, r.Bench, k, ts.Thread)
			}
			if ts.CacheHits+ts.CacheMisses != ts.CacheReads {
				return fmt.Errorf("run %d (%s/%s) thread %d: hits %d + misses %d != reads %d",
					i, r.Scheme.Name, r.Bench, k, ts.CacheHits, ts.CacheMisses, ts.CacheReads)
			}
			sumRetired += ts.Retired
			sumStalls += ts.PortConflictStalls
		}
		if len(r.ThreadStats) > 0 {
			if sumRetired != r.Retired {
				return fmt.Errorf("run %d (%s/%s): per-thread retired sums to %d, machine retired %d",
					i, r.Scheme.Name, r.Bench, sumRetired, r.Retired)
			}
			if sumStalls != r.PortConflictStalls {
				return fmt.Errorf("run %d (%s/%s): per-thread port stalls sum to %d, machine total %d",
					i, r.Scheme.Name, r.Bench, sumStalls, r.PortConflictStalls)
			}
		}
		// Port-conflict stalls exist only on port-filtering schemes.
		if r.Scheme.ReadPorts == 0 && r.PortConflictStalls > 0 {
			return fmt.Errorf("run %d (%s/%s): %d port-conflict stalls on an unported scheme",
				i, r.Scheme.Name, r.Bench, r.PortConflictStalls)
		}
		if t := r.Timing; t != nil {
			switch t.Outcome {
			case "simulated", "store", "coalesced":
			default:
				return fmt.Errorf("run %d (%s/%s): unknown timing outcome %q", i, r.Scheme.Name, r.Bench, t.Outcome)
			}
			if t.QueueWaitMS < 0 || t.StoreLookupMS < 0 || t.SimMS < 0 || t.StitchMS < 0 {
				return fmt.Errorf("run %d (%s/%s): negative timing field", i, r.Scheme.Name, r.Bench)
			}
		}
	}
	return nil
}

// checkMatrix verifies a gathered document sits exactly on the requested
// benches × schemes matrix: no run outside it, and — when both axes are
// given — every cell covered. This is the fleet-gather acceptance check:
// a merged multi-node document must be indistinguishable in coverage from
// a single node running the whole sweep. Either list may be empty to
// check only the other axis; -benches accepts "all".
func checkMatrix(f *sim.ResultsFile, benches, schemes []string) error {
	if len(benches) == 0 && len(schemes) == 0 {
		return nil
	}
	if len(benches) == 1 && benches[0] == "all" {
		benches = sim.Benchmarks()
	}
	wantB := make(map[string]bool, len(benches))
	for _, b := range benches {
		wantB[b] = true
	}
	wantS := make(map[string]bool, len(schemes))
	for _, s := range schemes {
		wantS[s] = true
	}
	type cell struct{ scheme, bench string }
	have := make(map[cell]bool, len(f.Runs))
	for i, r := range f.Runs {
		if len(benches) > 0 && !wantB[r.Bench] {
			return fmt.Errorf("run %d: bench %q outside the requested matrix", i, r.Bench)
		}
		if len(schemes) > 0 && !wantS[r.Scheme.Name] {
			return fmt.Errorf("run %d: scheme %q outside the requested matrix", i, r.Scheme.Name)
		}
		have[cell{r.Scheme.Name, r.Bench}] = true
	}
	if len(benches) > 0 && len(schemes) > 0 {
		for _, s := range schemes {
			for _, b := range benches {
				if !have[cell{s, b}] {
					return fmt.Errorf("matrix hole: no run for scheme %q bench %q", s, b)
				}
			}
		}
	}
	return nil
}

// checkProm validates a Prometheus text-exposition scrape: every
// non-comment line must be `name{labels} value` with a parseable float
// value, every sample's family must have been introduced by a # TYPE
// line, and every required name must appear as a family.
func checkProm(path string, required []string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	families := make(map[string]bool)
	samples := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(text)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				switch fields[3] {
				case "counter", "gauge", "histogram", "untyped", "summary":
				default:
					return fmt.Errorf("line %d: unknown TYPE %q", line, fields[3])
				}
				families[fields[2]] = true
			}
			continue
		}
		name, value, ok := splitSample(text)
		if !ok {
			return fmt.Errorf("line %d: malformed sample %q", line, text)
		}
		var v float64
		if _, err := fmt.Sscanf(value, "%g", &v); err != nil && value != "+Inf" && value != "-Inf" && value != "NaN" {
			return fmt.Errorf("line %d: unparseable value %q", line, value)
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !families[name] && !families[base] {
			return fmt.Errorf("line %d: sample %q has no preceding # TYPE", line, name)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples")
	}
	for _, want := range required {
		if !families[want] {
			return fmt.Errorf("required metric %q missing", want)
		}
	}
	return nil
}

// splitSample splits one exposition line into the metric name (with any
// label block stripped) and the value token.
func splitSample(text string) (name, value string, ok bool) {
	// name{labels} value  |  name value
	rest := text
	if i := strings.IndexByte(text, '{'); i >= 0 {
		j := strings.LastIndexByte(text, '}')
		if j < i {
			return "", "", false
		}
		name = text[:i]
		rest = strings.TrimSpace(text[j+1:])
	} else {
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return "", "", false
		}
		name = fields[0]
		rest = fields[1]
	}
	fields := strings.Fields(rest)
	if name == "" || len(fields) < 1 {
		return "", "", false
	}
	return name, fields[0], true
}

// checkFlight validates a flight dump and, when requestID is given,
// requires a trace tagged with it whose tree contains every span name in
// spans.
func checkFlight(path, requestID string, spans []string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var d obs.FlightDump
	if err := json.Unmarshal(data, &d); err != nil {
		return fmt.Errorf("parse flight dump: %w", err)
	}
	if uint64(len(d.Traces)) > d.TracesSeen || uint64(len(d.Events)) > d.EventsSeen {
		return fmt.Errorf("retained more than seen (%d/%d traces, %d/%d events)",
			len(d.Traces), d.TracesSeen, len(d.Events), d.EventsSeen)
	}
	for i, t := range d.Traces {
		if t.TraceID == "" || t.Root.Name == "" {
			return fmt.Errorf("trace %d: missing trace ID or root name", i)
		}
	}
	if requestID == "" {
		return nil
	}
	for _, t := range d.Traces {
		if t.RequestID != requestID {
			continue
		}
		for _, name := range spans {
			if t.Root.Find(name) == nil {
				return fmt.Errorf("trace %s: span %q missing from tree", requestID, name)
			}
		}
		return nil
	}
	return fmt.Errorf("no trace with request ID %q (have %d traces)", requestID, len(d.Traces))
}

// checkExplore validates an exploration document end to end via the
// engine's own validator: schema and identity fields, rung schedule
// consistency, per-point elimination/domination provenance, and a
// recomputed Pareto frontier that must match the document's.
func checkExplore(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var res explore.Result
	if err := json.Unmarshal(data, &res); err != nil {
		return fmt.Errorf("parse exploration document: %w", err)
	}
	if err := explore.ValidateResult(&res); err != nil {
		return err
	}
	fmt.Printf("%s: ok (explore schema v%d, %s, %s, %d candidates, %d rungs, frontier %d)\n",
		path, res.SchemaVersion, res.Generator, res.Strategy, len(res.Points), len(res.Rungs), len(res.Frontier))
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
