// Command checkresults validates -json results files: they must parse,
// carry the current schema version, and contain self-consistent runs. CI
// round-trips a fresh regsim export through it; it also guards archived
// results before analysis scripts consume them.
//
// Usage:
//
//	checkresults out.json [more.json ...]
package main

import (
	"fmt"
	"os"

	"regcache/internal/sim"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: checkresults <results.json> [...]")
		os.Exit(2)
	}
	exit := 0
	for _, path := range os.Args[1:] {
		f, err := sim.ReadResults(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			exit = 1
			continue
		}
		if err := check(f); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			exit = 1
			continue
		}
		fmt.Printf("%s: ok (schema v%d, %s, %d runs)\n", path, f.SchemaVersion, f.Generator, len(f.Runs))
	}
	os.Exit(exit)
}

// check applies cross-field consistency rules a well-formed export obeys.
func check(f *sim.ResultsFile) error {
	if len(f.Runs) == 0 {
		return fmt.Errorf("no runs")
	}
	for i, r := range f.Runs {
		if r.Bench == "" || r.Scheme.Name == "" || r.Scheme.Kind == "" {
			return fmt.Errorf("run %d: missing identity fields (%+v)", i, r)
		}
		if r.Cycles == 0 || r.Retired == 0 || r.IPC <= 0 {
			return fmt.Errorf("run %d (%s/%s): empty performance fields", i, r.Scheme.Name, r.Bench)
		}
		if c := r.Cache; c != nil {
			if c.Hits+c.Misses != c.Reads {
				return fmt.Errorf("run %d (%s/%s): hits %d + misses %d != reads %d",
					i, r.Scheme.Name, r.Bench, c.Hits, c.Misses, c.Reads)
			}
			if c.MissFiltered+c.MissCapacity+c.MissConflict != c.Misses {
				return fmt.Errorf("run %d (%s/%s): miss split does not sum to %d misses",
					i, r.Scheme.Name, r.Bench, c.Misses)
			}
			if c.InitialWrites+c.Fills != c.Writes {
				return fmt.Errorf("run %d (%s/%s): initial %d + fills %d != writes %d",
					i, r.Scheme.Name, r.Bench, c.InitialWrites, c.Fills, c.Writes)
			}
		}
	}
	return nil
}
