// Command regsimd is the long-running simulation service: it accepts
// sweep jobs (scheme × benchmark matrices) over HTTP, shards their points
// across the shared sim.Runner worker pool, coalesces identical in-flight
// and memoized points through the run layer's single-flight cache, and
// returns schema-versioned results documents — synchronously for small
// sweeps, via polled job IDs for large ones.
//
// Operational behaviour: the admission queue is bounded (-queue points;
// excess load is shed with 429 + Retry-After, and a sweep too large to
// ever fit gets a permanent 413), settled async jobs are retained up to
// -max-jobs, every request carries a deadline propagated into the
// simulations, and SIGTERM/SIGINT triggers a graceful drain that finishes
// in-flight sweeps before closing the pool.
// Service metrics (queue depth, coalesce hit-rate, per-sweep latency) are
// served on the same listener at /debug/vars and as Prometheus text at
// /metrics, pprof at /debug/pprof/, and a flight recorder of recent
// request traces plus error/panic/shed events at /debug/flight. Every
// request carries an X-Request-Id (inbound ones are honoured) echoed on
// the response, stamped into every structured JSON log line on stderr,
// and attached to the request's trace.
//
// With -store DIR the daemon keeps a durable content-addressed result
// store under DIR: completed points are appended asynchronously, memo
// misses consult the store before simulating, and a restart on the same
// directory answers repeated sweeps from disk (warm start). The store's
// hit counters appear under serve.runner.store_* in /debug/vars.
//
// With -peers (plus -self, this node's URL as peers reach it) the daemon
// joins a fleet: a sweep received by any node is partitioned across the
// fleet by consistent-hashing each point's store fingerprint, so every
// node runs only the points it owns — whose results its durable store
// shard caches — and proxies the rest as leaf sub-sweeps, hedging
// straggler partitions to the next ring node. Peers resolve each other's
// cached points over GET /v1/store/{key} before re-simulating.
//
//	regsimd -addr :8081 -store /var/ra -self http://10.0.0.1:8081 \
//	        -peers http://10.0.0.2:8081,http://10.0.0.3:8081
//
// Examples:
//
//	regsimd -addr :8080
//	regsimd -addr :8080 -workers 8 -queue 2048 -sync-max 32
//
//	curl -s localhost:8080/v1/sweep -d '{"benches":["gzip","mcf"],"schemes":["use:64x2","mono:3"]}'
//	curl -s 'localhost:8080/v1/jobs/j-1?wait=5s'
//	curl -s localhost:8080/v1/jobs/j-1/results
//	curl -s localhost:8080/debug/vars | jq .regcache
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"regcache/internal/obs"
	"regcache/internal/serve"
	"regcache/internal/sim"
	"regcache/internal/store"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "HTTP listen address")
		workers      = flag.Int("workers", 0, "simulation worker pool size (0 = NumCPU)")
		queue        = flag.Int("queue", 4096, "admission bound in sweep points; excess load is shed with 429")
		syncMax      = flag.Int("sync-max", 64, "largest sweep (in points) answered synchronously; bigger sweeps get a job ID")
		maxJobs      = flag.Int("max-jobs", 1024, "settled async jobs retained for polling; the oldest are evicted beyond this")
		timeout      = flag.Duration("timeout", 60*time.Second, "default per-request deadline")
		maxTimeout   = flag.Duration("max-timeout", 10*time.Minute, "cap on client-chosen deadlines")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "how long SIGTERM waits for in-flight sweeps")
		storeDir     = flag.String("store", "", "durable result store directory for warm restarts (created if missing)")
		storeMax     = flag.Int64("store-max-bytes", 0, "size cap on live store data; 0 = unbounded (GC evicts least-recently-re-hit entries)")
		logText      = flag.Bool("log-text", false, "log human-readable text instead of JSON")
		peers        = flag.String("peers", "", "comma-separated peer base URLs; enables the fleet plane (requires -self)")
		self         = flag.String("self", "", "this node's base URL as peers reach it, e.g. http://host:8080")
		hedgeAfter   = flag.Duration("hedge-after", 0, "fleet straggler-deadline fallback before latency data accrues (0 = 2s default)")
	)
	flag.Parse()
	logger := obs.NewLogger(os.Stderr)
	if *logText {
		logger = obs.NewTextLogger(os.Stderr)
	}
	obs.SetLogger(logger)
	if *workers < 0 || *queue < 1 || *syncMax < 1 || *maxJobs < 1 {
		fmt.Fprintln(os.Stderr, "invalid -workers/-queue/-sync-max/-max-jobs")
		flag.Usage()
		os.Exit(2)
	}
	peerList := splitList(*peers)
	if (len(peerList) > 0) != (*self != "") {
		fmt.Fprintln(os.Stderr, "-peers and -self must be set together")
		flag.Usage()
		os.Exit(2)
	}

	// With -store the daemon owns the runner so it can attach the durable
	// result store before the pool starts: memo misses consult the store,
	// completed points append to it, and a restart on the same directory
	// serves repeated sweeps without re-simulating. The store outlives the
	// runner: Drain closes the backend (flushing queued appends), and only
	// then is the store itself closed.
	var (
		backend *sim.Runner
		rstore  *sim.ResultStore
	)
	if *storeDir != "" {
		rs, err := sim.OpenResultStore(*storeDir, store.Options{MaxBytes: *storeMax})
		if err != nil {
			fmt.Fprintf(os.Stderr, "regsimd: open store: %v\n", err)
			os.Exit(1)
		}
		rstore = rs
		backend = sim.NewRunner(*workers)
		if err := backend.UseStore(rs); err != nil {
			fmt.Fprintf(os.Stderr, "regsimd: attach store: %v\n", err)
			os.Exit(1)
		}
		logger.Info("result store opened", "dir", *storeDir, "entries", rs.Store().Len())
	}

	srv := serve.New(serve.Config{
		Backend:         backendOrNil(backend),
		Workers:         *workers,
		MaxQueuedPoints: *queue,
		MaxSyncPoints:   *syncMax,
		MaxJobs:         *maxJobs,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
		Peers:           peerList,
		SelfURL:         *self,
		Store:           rstore,
		FleetHedgeAfter: *hedgeAfter,
		Flight:          obs.DefaultFlight(),
		Logger:          logger,
	})
	srv.RegisterMetrics(obs.Default(), "serve")
	obs.Default().Publish("regcache")

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("regsimd listening", "addr", *addr, "workers", *workers,
		"endpoints", "/v1/sweep /metrics /debug/vars /debug/flight /debug/pprof/")

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		logger.Info("signal received, draining", "signal", sig.String(), "drain_timeout", drainTimeout.String())
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "regsimd: %v\n", err)
			_ = httpSrv.Close()
			closeStore(rstore)
			os.Exit(1)
		}
		// Drain closed the backend, which flushed every queued store
		// append; closing the store now releases the writer lock with all
		// results durable.
		closeStore(rstore)
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "regsimd: shutdown: %v\n", err)
			os.Exit(1)
		}
		logger.Info("drained cleanly")
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "regsimd: %v\n", err)
		closeStore(rstore)
		os.Exit(1)
	}
}

// backendOrNil avoids handing serve.New a non-nil interface wrapping a nil
// *sim.Runner (which it would try to use instead of building its own).
func backendOrNil(r *sim.Runner) serve.Backend {
	if r == nil {
		return nil
	}
	return r
}

// splitList splits a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func closeStore(rs *sim.ResultStore) {
	if rs == nil {
		return
	}
	if err := rs.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "regsimd: close store: %v\n", err)
	}
}
