// Command regsimstore administers a durable result store directory — the
// on-disk L2 cache that regsim/regsimd/experiments populate with -store.
//
// Subcommands:
//
//	regsimstore ls      -dir DIR     list entries (bench, scheme, budget, IPC)
//	regsimstore stats   -dir DIR     index and segment statistics
//	regsimstore verify  -dir DIR     full CRC scan of every segment
//	regsimstore compact -dir DIR     rewrite live records, reclaim dead space
//	regsimstore gc      -dir DIR -max-bytes N   evict down to N live bytes
//
// ls, stats, and verify open the store read-only (a shared lock, so they
// can run against a store a stopped daemon left behind — but not against a
// live writer). compact and gc take the exclusive writer lock.
package main

import (
	"flag"
	"fmt"
	"os"

	"regcache/internal/sim"
	"regcache/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "ls":
		err = cmdLs(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "compact":
		err = cmdCompact(os.Args[2:])
	case "gc":
		err = cmdGC(os.Args[2:])
	case "help", "-h", "--help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "regsimstore: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "regsimstore: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `regsimstore <ls|stats|verify|compact|gc> -dir DIR [flags]

ls:      list entries with their decoded run summaries (read-only)
stats:   index and segment statistics (read-only)
verify:  re-read and CRC-check every record in every segment (read-only)
compact: rewrite live records into fresh segments, delete the old ones
gc:      evict least-recently-re-hit entries down to -max-bytes, then compact
  -max-bytes n   target live data size in bytes (required)`)
}

// flagSet builds a subcommand flag set with the shared -dir flag.
func flagSet(name string) (*flag.FlagSet, *string) {
	fs := flag.NewFlagSet("regsimstore "+name, flag.ExitOnError)
	dir := fs.String("dir", "", "store directory")
	return fs, dir
}

func open(dir string, readOnly bool) (*store.Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("need -dir")
	}
	return store.Open(dir, store.Options{ReadOnly: readOnly})
}

func cmdLs(args []string) error {
	fs, dir := flagSet("ls")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := open(*dir, true)
	if err != nil {
		return err
	}
	defer st.Close()
	n, undecodable := 0, 0
	for _, info := range st.Entries() {
		val, err := st.Get(info.Key)
		if err != nil {
			fmt.Printf("%x  seg %d  %6d B  unreadable: %v\n", info.Key[:6], info.Segment, info.Len, err)
			undecodable++
			continue
		}
		rec, err := sim.DecodeStoredResult(val)
		if err != nil {
			fmt.Printf("%x  seg %d  %6d B  %v\n", info.Key[:6], info.Segment, info.Len, err)
			undecodable++
			continue
		}
		fmt.Printf("%x  seg %d  %6d B  %-28s %-10s n=%-8d ipc %.3f\n",
			info.Key[:6], info.Segment, info.Len, rec.Scheme.Name, rec.Bench, rec.Insts, rec.IPC)
		n++
	}
	fmt.Printf("%d entries", n)
	if undecodable > 0 {
		fmt.Printf(" (%d undecodable)", undecodable)
	}
	fmt.Println()
	return nil
}

func cmdStats(args []string) error {
	fs, dir := flagSet("stats")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := open(*dir, true)
	if err != nil {
		return err
	}
	defer st.Close()
	s := st.Stats()
	fmt.Printf("dir:          %s\n", st.Dir())
	fmt.Printf("entries:      %d\n", s.Entries)
	fmt.Printf("segments:     %d\n", s.Segments)
	fmt.Printf("size bytes:   %d\n", s.SizeBytes)
	fmt.Printf("live bytes:   %d\n", s.LiveBytes)
	if s.SizeBytes > 0 {
		fmt.Printf("live frac:    %.1f%%\n", 100*float64(s.LiveBytes)/float64(s.SizeBytes))
	}
	fmt.Printf("superseded:   %d\n", s.Superseded)
	fmt.Printf("corrupt recs: %d\n", s.CorruptRecords)
	fmt.Printf("torn recs:    %d\n", s.TornRecords)
	return nil
}

func cmdVerify(args []string) error {
	fs, dir := flagSet("verify")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := open(*dir, true)
	if err != nil {
		return err
	}
	defer st.Close()
	rep, err := st.Verify()
	if err != nil {
		return err
	}
	fmt.Println(rep)
	if rep.Corrupt > 0 {
		return fmt.Errorf("%d corrupt records", rep.Corrupt)
	}
	return nil
}

func cmdCompact(args []string) error {
	fs, dir := flagSet("compact")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := open(*dir, false)
	if err != nil {
		return err
	}
	defer st.Close()
	before := st.Stats()
	if err := st.Compact(); err != nil {
		return err
	}
	after := st.Stats()
	fmt.Printf("compacted: %d -> %d bytes (%d entries)\n", before.SizeBytes, after.SizeBytes, after.Entries)
	return nil
}

func cmdGC(args []string) error {
	fs, dir := flagSet("gc")
	maxBytes := fs.Int64("max-bytes", -1, "target live data size in bytes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *maxBytes < 0 {
		return fmt.Errorf("gc needs -max-bytes")
	}
	st, err := open(*dir, false)
	if err != nil {
		return err
	}
	defer st.Close()
	evicted, err := st.GC(*maxBytes)
	if err != nil {
		return err
	}
	after := st.Stats()
	fmt.Printf("evicted %d entries; %d entries, %d live bytes remain\n", evicted, after.Entries, after.LiveBytes)
	return nil
}
