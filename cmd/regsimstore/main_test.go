package main

// The admin subcommands are plain functions over args slices, so they are
// tested directly against real store directories: list/stats/verify on a
// populated store, verify's non-zero exit on planted corruption, and the
// compact/gc maintenance paths.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"regcache/internal/core"
	"regcache/internal/pipeline"
	"regcache/internal/sim"
	"regcache/internal/store"
)

// populate writes n fabricated results into a fresh store directory.
func populate(t *testing.T, dir string, n int) {
	t.Helper()
	rs, err := sim.OpenResultStore(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	for i := 0; i < n; i++ {
		j := sim.Job{
			Scheme: sim.UseBased(16+16*i, 2, core.IndexFilteredRR),
			Bench:  "gzip",
			Opts:   sim.Options{Insts: 1000},
		}
		res := pipeline.Result{IPC: 1.5 + float64(i)}
		if err := rs.Put(j, res); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLsStatsVerify(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	populate(t, dir, 3)

	for _, cmd := range []func([]string) error{cmdLs, cmdStats, cmdVerify} {
		if err := cmd([]string{"-dir", dir}); err != nil {
			t.Fatalf("%T: %v", cmd, err)
		}
	}
	if err := cmdLs(nil); err == nil {
		t.Error("ls without -dir must fail")
	}
	if err := cmdStats([]string{"-dir", filepath.Join(dir, "missing")}); err == nil {
		t.Error("stats on a missing directory must fail")
	}
}

func TestVerifyFlagsCorruption(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	populate(t, dir, 2)

	// Flip one byte inside the first record's payload.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.rcs"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	f, err := os.OpenFile(segs[0], os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, 60); err != nil {
		t.Fatal(err)
	}
	f.Close()

	err = cmdVerify([]string{"-dir", dir})
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("verify on a flipped store: %v, want corrupt-records error", err)
	}
}

func TestCompactAndGC(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	populate(t, dir, 4)
	populate(t, dir, 4) // second pass supersedes all four entries

	if err := cmdCompact([]string{"-dir", dir}); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if err := cmdGC([]string{"-dir", dir, "-max-bytes", "1"}); err != nil {
		t.Fatalf("gc: %v", err)
	}
	if err := cmdGC([]string{"-dir", dir}); err == nil {
		t.Error("gc without -max-bytes must fail")
	}

	st, err := store.Open(dir, store.Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Len() != 0 {
		t.Errorf("gc to 1 byte left %d entries", st.Len())
	}
}
