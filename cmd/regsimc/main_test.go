package main

// Retry-policy tests for the submit path: 429 responses are retried with
// the server's Retry-After hint honoured, 413 is permanent and never
// retried, and the retry budget is finite.

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestPostSweepRetriesOn429(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0") // invalid as a wait; falls back to backoff
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	resp, data, err := postSweep(ts.URL, []byte(`{}`), 4)
	if err != nil {
		t.Fatalf("postSweep: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after retries, want 200", resp.StatusCode)
	}
	if string(data) != `{"ok":true}` {
		t.Fatalf("body %q", data)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("%d requests, want 3 (two sheds + success)", got)
	}
}

func TestPostSweepHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	var gap time.Duration
	var last time.Time
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now()
		if calls.Add(1) == 1 {
			last = now
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		gap = now.Sub(last)
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	if _, _, err := postSweep(ts.URL, nil, 1); err != nil {
		t.Fatalf("postSweep: %v", err)
	}
	// 1s hint, jittered to at least 750ms — far above the 500ms default
	// backoff, proving the header was used.
	if gap < 700*time.Millisecond {
		t.Fatalf("retry arrived after %v, want >= ~750ms (Retry-After honoured)", gap)
	}
}

func TestPostSweepRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	resp, _, err := postSweep(ts.URL, nil, 2)
	if err != nil {
		t.Fatalf("postSweep: %v", err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want the final 429 surfaced", resp.StatusCode)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("%d requests, want 3 (initial + 2 retries)", got)
	}
}

func TestPostSweepNeverRetries413(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusRequestEntityTooLarge)
	}))
	defer ts.Close()

	resp, _, err := postSweep(ts.URL, nil, 5)
	if err != nil {
		t.Fatalf("postSweep: %v", err)
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("%d requests, want 1 (413 is permanent)", got)
	}
}
