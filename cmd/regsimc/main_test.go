package main

// Retry-policy tests for the submit path: 429 responses are retried with
// the server's Retry-After hint honoured, 413 is permanent and never
// retried, and the retry budget is finite.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"regcache/internal/sim"
)

func TestPostSweepRetriesOn429(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0") // RFC 9110: retry immediately
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	resp, data, err := postJSON(ts.URL, "/v1/sweep", []byte(`{}`), 4)
	if err != nil {
		t.Fatalf("postJSON: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after retries, want 200", resp.StatusCode)
	}
	if string(data) != `{"ok":true}` {
		t.Fatalf("body %q", data)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("%d requests, want 3 (two sheds + success)", got)
	}
}

func TestPostSweepHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	var gap time.Duration
	var last time.Time
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now()
		if calls.Add(1) == 1 {
			last = now
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		gap = now.Sub(last)
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	if _, _, err := postJSON(ts.URL, "/v1/sweep", nil, 1); err != nil {
		t.Fatalf("postJSON: %v", err)
	}
	// 1s hint, jittered to at least 750ms — far above the 500ms default
	// backoff, proving the header was used.
	if gap < 700*time.Millisecond {
		t.Fatalf("retry arrived after %v, want >= ~750ms (Retry-After honoured)", gap)
	}
}

// TestPostSweepHonorsRetryAfterHTTPDate pins the RFC 9110 second form of
// the header: an HTTP-date. The old client parsed only integer seconds and
// silently fell back to its 500ms default backoff, retrying well before
// the server asked it to.
func TestPostSweepHonorsRetryAfterHTTPDate(t *testing.T) {
	var calls atomic.Int32
	var gap time.Duration
	var last time.Time
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now()
		if calls.Add(1) == 1 {
			last = now
			w.Header().Set("Retry-After", now.Add(1200*time.Millisecond).UTC().Format(http.TimeFormat))
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		gap = now.Sub(last)
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	if _, _, err := postJSON(ts.URL, "/v1/sweep", nil, 1); err != nil {
		t.Fatalf("postJSON: %v", err)
	}
	// HTTP-date truncates to whole seconds, so the resolved wait is
	// somewhere in (200ms, 1.2s]; jittered down to at worst 75%. Anything
	// past the ~150ms floor proves the date form was parsed rather than
	// ignored (the ignored-header backoff would also be 500ms, so pin the
	// retry happening at all *and* the parse unit tests pin the values).
	if gap < 150*time.Millisecond {
		t.Fatalf("retry arrived after %v, want the HTTP-date honoured", gap)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("%d requests, want 2", got)
	}
}

func TestParseRetryAfter(t *testing.T) {
	future := time.Now().Add(10 * time.Second).UTC().Format(http.TimeFormat)
	past := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	cases := []struct {
		in     string
		ok     bool
		lo, hi time.Duration // accepted range (date forms race the clock)
	}{
		{"", false, 0, 0},
		{"garbage", false, 0, 0},
		{"-3", false, 0, 0},
		{"0", true, 0, 0},
		{"7", true, 7 * time.Second, 7 * time.Second},
		{future, true, 8 * time.Second, 10 * time.Second},
		{past, true, 0, 0}, // already allowed: retry now
	}
	for _, c := range cases {
		d, ok := parseRetryAfter(c.in)
		if ok != c.ok {
			t.Errorf("parseRetryAfter(%q) ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if ok && (d < c.lo || d > c.hi) {
			t.Errorf("parseRetryAfter(%q) = %v, want in [%v, %v]", c.in, d, c.lo, c.hi)
		}
	}
}

// TestServerErrorRetryAfterMessage pins the fixed diagnostic: the old code
// blindly appended "s" to the raw header ("retry after Mon, 02 Jan...s");
// the message now reports the resolved duration for either header form.
func TestServerErrorRetryAfterMessage(t *testing.T) {
	mk := func(ra string) *http.Response {
		h := http.Header{}
		if ra != "" {
			h.Set("Retry-After", ra)
		}
		return &http.Response{
			Status:     "429 Too Many Requests",
			StatusCode: http.StatusTooManyRequests,
			Header:     h,
		}
	}
	if got := serverError(mk("7"), []byte(`{"error":"queue full"}`)).Error(); !strings.Contains(got, "retry after 7s") {
		t.Errorf("seconds form: %q, want it to mention %q", got, "retry after 7s")
	}
	date := time.Now().Add(5 * time.Second).UTC().Format(http.TimeFormat)
	if got := serverError(mk(date), []byte(`{"error":"queue full"}`)).Error(); !strings.Contains(got, "retry after") || strings.Contains(got, date+"s") {
		t.Errorf("date form: %q, want a resolved duration, not the raw date with an s suffix", got)
	}
	if got := serverError(mk(""), []byte(`{"error":"queue full"}`)).Error(); strings.Contains(got, "retry after") {
		t.Errorf("no header: %q, want no retry hint", got)
	}
}

func TestPostSweepRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	resp, _, err := postJSON(ts.URL, "/v1/sweep", nil, 2)
	if err != nil {
		t.Fatalf("postJSON: %v", err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want the final 429 surfaced", resp.StatusCode)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("%d requests, want 3 (initial + 2 retries)", got)
	}
}

func TestPostSweepNeverRetries413(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusRequestEntityTooLarge)
	}))
	defer ts.Close()

	resp, _, err := postJSON(ts.URL, "/v1/sweep", nil, 5)
	if err != nil {
		t.Fatalf("postJSON: %v", err)
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("%d requests, want 1 (413 is permanent)", got)
	}
}

// TestServerErrorIncludesRequestID: diagnostics quote the server-assigned
// X-Request-Id so an operator can jump from the client error straight to
// the daemon's matching log line and /debug/flight trace.
func TestServerErrorIncludesRequestID(t *testing.T) {
	resp := &http.Response{
		Status:     "503 Service Unavailable",
		StatusCode: http.StatusServiceUnavailable,
		Header:     http.Header{"X-Request-Id": []string{"r-deadbeefcafe0123"}},
	}
	err := serverError(resp, []byte(`{"error":"draining"}`))
	for _, want := range []string{"503", "req r-deadbeefcafe0123", "draining"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestRequestIDSuffix(t *testing.T) {
	with := &http.Response{Header: http.Header{"X-Request-Id": []string{"abc"}}}
	if got := requestIDSuffix(with); got != ", req abc" {
		t.Errorf("suffix = %q", got)
	}
	without := &http.Response{Header: http.Header{}}
	if got := requestIDSuffix(without); got != "" {
		t.Errorf("suffix without header = %q, want empty", got)
	}
}

// TestRetryLineQuotesRequestID: the 429 retry/backoff notice names the
// request ID of the shed response it is waiting out.
func TestRetryLineQuotesRequestID(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("X-Request-Id", "r-shed1")
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	old := os.Stderr
	rd, wr, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = wr
	_, _, perr := postJSON(ts.URL, "/v1/sweep", []byte(`{}`), 2)
	wr.Close()
	os.Stderr = old
	captured, _ := io.ReadAll(rd)
	if perr != nil {
		t.Fatalf("postJSON: %v", perr)
	}
	if !strings.Contains(string(captured), "req r-shed1") {
		t.Errorf("retry line does not quote the shed request ID: %q", captured)
	}
}

func TestTimingSummary(t *testing.T) {
	cases := []struct {
		rec  sim.TimingRecord
		want []string
		not  []string
	}{
		{sim.TimingRecord{Outcome: "simulated", QueueWaitMS: 1.25, SimMS: 40.5, StitchMS: 2.5},
			[]string{"simulated", "queue 1.2ms", "sim 40.5ms", "stitch 2.5ms"}, nil},
		{sim.TimingRecord{Outcome: "simulated", QueueWaitMS: 0, SimMS: 3},
			[]string{"sim 3.0ms"}, []string{"stitch"}},
		{sim.TimingRecord{Outcome: "store", StoreLookupMS: 0.5},
			[]string{"store", "lookup 0.5ms"}, []string{"sim "}},
		{sim.TimingRecord{Outcome: "coalesced", QueueWaitMS: 9},
			[]string{"coalesced", "queue 9.0ms"}, []string{"sim ", "lookup"}},
	}
	for _, c := range cases {
		got := timingSummary(&c.rec)
		for _, w := range c.want {
			if !strings.Contains(got, w) {
				t.Errorf("timingSummary(%+v) = %q, missing %q", c.rec, got, w)
			}
		}
		for _, n := range c.not {
			if strings.Contains(got, n) {
				t.Errorf("timingSummary(%+v) = %q, should not contain %q", c.rec, got, n)
			}
		}
	}
}

// TestPostSweepRetriesOn503Drain: a draining node sheds with 503 +
// Retry-After; the client must treat it exactly like a 429 — wait out the
// hint and retry — because a drain is transient (the node restarts, or a
// fleet gateway recovers capacity).
func TestPostSweepRetriesOn503Drain(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	resp, data, err := postJSON(ts.URL, "/v1/sweep", []byte(`{}`), 4)
	if err != nil {
		t.Fatalf("postJSON: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after drain retries, want 200", resp.StatusCode)
	}
	if string(data) != `{"ok":true}` {
		t.Fatalf("body %q", data)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("%d requests, want 3 (two drain sheds + success)", got)
	}
}

// TestPostSweep503HonorsRetryAfter: the drain hint is waited out, same as
// the 429 path.
func TestPostSweep503HonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	var gap time.Duration
	var last time.Time
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now()
		if calls.Add(1) == 1 {
			last = now
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		gap = now.Sub(last)
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	if _, _, err := postJSON(ts.URL, "/v1/sweep", nil, 1); err != nil {
		t.Fatalf("postJSON: %v", err)
	}
	if gap < 700*time.Millisecond {
		t.Fatalf("retry arrived after %v, want >= ~750ms (drain Retry-After honoured)", gap)
	}
}

// TestShedStatus pins exactly which statuses the client treats as
// transient shedding: 429 and 503, nothing else.
func TestShedStatus(t *testing.T) {
	cases := []struct {
		code int
		shed bool
	}{
		{http.StatusOK, false},
		{http.StatusAccepted, false},
		{http.StatusBadRequest, false},
		{http.StatusRequestEntityTooLarge, false}, // permanent: the sweep can never fit
		{http.StatusTooManyRequests, true},
		{http.StatusInternalServerError, false},
		{http.StatusBadGateway, false}, // fleet exhausted the ring; retrying won't help now
		{http.StatusServiceUnavailable, true},
		{http.StatusGatewayTimeout, false},
	}
	for _, c := range cases {
		if got := shedStatus(c.code); got != c.shed {
			t.Errorf("shedStatus(%d) = %v, want %v", c.code, got, c.shed)
		}
	}
}
