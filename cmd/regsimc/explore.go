package main

// regsimc explore: submit a design-space search to POST /v1/explore and
// render the resulting Pareto frontier. Axis flags take either a comma
// list ("16,32,64") or a min:max:step range ("16:64:16"); the request is
// validated client-side for fast feedback and re-validated by the server.
//
//	regsimc explore -benches gzip,mcf -entries 16,32,64 -ways 1,2,4 \
//	    -index preg,rr,filtered -strategy halving -insts 200000
//
// Async submissions print a job ID; fetch the settled document with
// "regsimc fetch" and validate it offline with "checkresults -explore".

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"

	"regcache/internal/explore"
)

// readAll drains and closes a response body.
func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

func cmdExplore(args []string) error {
	fs, server := flagSet("explore")
	benches := fs.String("benches", "gzip", `comma-separated benchmarks, or "all"`)
	entries := fs.String("entries", "", "cache-entries axis: comma list or min:max:step")
	ways := fs.String("ways", "1", "associativity axis: comma list or min:max:step")
	kinds := fs.String("kinds", "", "comma-separated cache kinds (use,lru,nb); default use")
	index := fs.String("index", "", "comma-separated index policies (preg,rr,min,filtered); default filtered")
	maxPRegs := fs.String("maxpregs", "", "optional MaxPRegs axis: comma list or min:max:step")
	maxUse := fs.String("maxuse", "", "optional MaxUse axis: comma list or min:max:step")
	portsAx := fs.String("ports", "", "optional backing read-port axis (0 = unported): comma list or min:max:step")
	threadsAx := fs.String("threads", "", "optional workload thread-count axis: comma list or min:max:step")
	strategy := fs.String("strategy", "", "grid (default) or halving")
	insts := fs.Uint64("insts", 0, "full per-benchmark budget (0 = server default)")
	minInsts := fs.Uint64("min-insts", 0, "halving first-rung budget (0 = insts/8)")
	eta := fs.Int("eta", 0, "halving cut factor: each rung keeps 1/eta (0 = 2)")
	deadline := fs.Duration("deadline", 0, "per-request deadline (0 = server default)")
	async := fs.Bool("async", false, "submit asynchronously and print the job ID")
	out := fs.String("o", "", "save the exploration document to this file")
	maxRetries := fs.Int("max-retries", 4, "retries when the server sheds load with 429 (0 = fail immediately)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *entries == "" {
		return fmt.Errorf("explore needs -entries (comma list or min:max:step)")
	}
	spec := explore.Spec{
		Strategy: *strategy,
		Insts:    *insts,
		MinInsts: *minInsts,
		Eta:      *eta,
	}
	var err error
	if spec.Space.Entries, err = parseAxis(*entries); err != nil {
		return fmt.Errorf("-entries: %w", err)
	}
	if spec.Space.Ways, err = parseAxis(*ways); err != nil {
		return fmt.Errorf("-ways: %w", err)
	}
	spec.Space.Kinds = splitList(*kinds)
	spec.Space.Index = splitList(*index)
	if *maxPRegs != "" {
		ax, err := parseAxis(*maxPRegs)
		if err != nil {
			return fmt.Errorf("-maxpregs: %w", err)
		}
		spec.Space.MaxPRegs = &ax
	}
	if *maxUse != "" {
		ax, err := parseAxis(*maxUse)
		if err != nil {
			return fmt.Errorf("-maxuse: %w", err)
		}
		spec.Space.MaxUse = &ax
	}
	if *portsAx != "" {
		ax, err := parseAxis(*portsAx)
		if err != nil {
			return fmt.Errorf("-ports: %w", err)
		}
		spec.Space.Ports = &ax
	}
	if *threadsAx != "" {
		ax, err := parseAxis(*threadsAx)
		if err != nil {
			return fmt.Errorf("-threads: %w", err)
		}
		spec.Space.Threads = &ax
	}
	// Client-side validation for fast feedback (the server re-checks).
	if err := spec.WithDefaults().Validate(); err != nil {
		return err
	}
	req := struct {
		explore.Spec
		Benches    []string `json:"benches"`
		Async      bool     `json:"async,omitempty"`
		DeadlineMS int64    `json:"deadline_ms,omitempty"`
	}{Spec: spec, Benches: splitList(*benches), Async: *async}
	if *deadline > 0 {
		req.DeadlineMS = deadline.Milliseconds()
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, data, err := postJSON(*server, "/v1/explore", body, *maxRetries)
	if err != nil {
		return err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return reportExplore(data, *out)
	case http.StatusAccepted:
		var st struct {
			ID     string `json:"id"`
			Status string `json:"status"`
			Points int    `json:"points"`
		}
		if err := json.Unmarshal(data, &st); err != nil {
			return fmt.Errorf("parsing job response: %w", err)
		}
		if *async {
			fmt.Printf("job %s accepted (%d evaluations, %s)\n", st.ID, st.Points, st.Status)
			fmt.Printf("poll:  regsimc status -server %s -job %s -wait 10s\n", *server, st.ID)
			fmt.Printf("fetch: regsimc fetch -server %s -job %s -o explore.json\n", *server, st.ID)
			return nil
		}
		// The schedule was too large for the sync path; long-poll the job
		// to settlement and render the document as if it had been sync.
		fmt.Fprintf(os.Stderr, "regsimc: job %s accepted (%d evaluations), polling\n", st.ID, st.Points)
		doc, err := pollExplore(*server, st.ID)
		if err != nil {
			return err
		}
		return reportExplore(doc, *out)
	default:
		return serverError(resp, data)
	}
}

// pollExplore long-polls a job until it settles, then fetches its
// exploration document.
func pollExplore(server, id string) ([]byte, error) {
	for {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s?wait=10s", server, id))
		if err != nil {
			return nil, err
		}
		data, err := readAll(resp)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, serverError(resp, data)
		}
		var st struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal(data, &st); err != nil {
			return nil, fmt.Errorf("parsing job status: %w", err)
		}
		switch st.Status {
		case "running":
			continue
		case "failed":
			return nil, fmt.Errorf("job %s failed: %s", id, st.Error)
		}
		resp, err = http.Get(fmt.Sprintf("%s/v1/jobs/%s/results", server, id))
		if err != nil {
			return nil, err
		}
		doc, err := readAll(resp)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, serverError(resp, doc)
		}
		return doc, nil
	}
}

// parseAxis accepts "16,32,64" (value list) or "16:64:16" (min:max:step).
func parseAxis(s string) (explore.Axis, error) {
	if strings.Contains(s, ":") {
		parts := strings.Split(s, ":")
		if len(parts) != 3 {
			return explore.Axis{}, fmt.Errorf("range form is min:max:step, got %q", s)
		}
		var vals [3]int
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return explore.Axis{}, fmt.Errorf("bad range bound %q", p)
			}
			vals[i] = v
		}
		return explore.Axis{Min: vals[0], Max: vals[1], Step: vals[2]}, nil
	}
	var values []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return explore.Axis{}, fmt.Errorf("bad axis value %q", p)
		}
		values = append(values, v)
	}
	return explore.Axis{Values: values}, nil
}

// reportExplore renders the frontier table, the dominated/eliminated
// tallies, and the rung schedule, then optionally saves the document.
func reportExplore(data []byte, out string) error {
	var res explore.Result
	if err := json.Unmarshal(data, &res); err != nil {
		return fmt.Errorf("parsing exploration document: %w", err)
	}
	if err := explore.ValidateResult(&res); err != nil {
		return fmt.Errorf("exploration document fails validation: %w", err)
	}
	fmt.Printf("explored %d candidates (%s, %s objective, %s cost model)\n",
		len(res.Points), res.Strategy, res.Objective, res.CostModel)
	for _, r := range res.Rungs {
		fmt.Printf("  rung %d: %d candidates at %d insts, %d advance\n",
			r.Rung, r.Candidates, r.Insts, r.Survivors)
	}
	fmt.Println("frontier (cheapest first):")
	for _, idx := range res.Frontier {
		p := res.Points[idx]
		fmt.Printf("  %-28s cost %12.0f  %s %.4f\n", p.Scheme.Name, p.Cost, res.Objective, p.Objective)
	}
	var dominated, eliminated int
	byRung := map[int]int{}
	for _, p := range res.Points {
		switch p.Status {
		case explore.StatusDominated:
			dominated++
		case explore.StatusEliminated:
			eliminated++
			byRung[p.EliminatedAtRung]++
		}
	}
	line := fmt.Sprintf("%d on frontier, %d dominated, %d eliminated", len(res.Frontier), dominated, eliminated)
	if eliminated > 0 {
		rungs := make([]int, 0, len(byRung))
		for r := range byRung {
			rungs = append(rungs, r)
		}
		sort.Ints(rungs)
		parts := make([]string, 0, len(rungs))
		for _, r := range rungs {
			parts = append(parts, fmt.Sprintf("%d at rung %d", byRung[r], r))
		}
		line += " (" + strings.Join(parts, ", ") + ")"
	}
	if res.SkippedInvalid > 0 {
		line += fmt.Sprintf("; %d invalid combinations skipped", res.SkippedInvalid)
	}
	fmt.Println(line)
	if out != "" {
		if err := os.WriteFile(out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("saved %s\n", out)
	}
	return nil
}
