package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"regcache/internal/explore"
	"regcache/internal/serve"
	"regcache/internal/sim"
)

func TestParseAxis(t *testing.T) {
	cases := []struct {
		in   string
		want explore.Axis
		err  bool
	}{
		{in: "16,32,64", want: explore.Axis{Values: []int{16, 32, 64}}},
		{in: "8", want: explore.Axis{Values: []int{8}}},
		{in: "16:64:16", want: explore.Axis{Min: 16, Max: 64, Step: 16}},
		{in: "16:64", err: true},
		{in: "a,b", err: true},
		{in: "1:2:x", err: true},
	}
	for _, tc := range cases {
		got, err := parseAxis(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("parseAxis(%q): no error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseAxis(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseAxis(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

// TestCmdExploreEndToEnd drives the explore subcommand against a real
// in-process daemon: the 14-evaluation halving schedule exceeds the tiny
// MaxSyncPoints, so the CLI takes the full async path — submit, long-poll
// the job, fetch and validate the document, render, save.
func TestCmdExploreEndToEnd(t *testing.T) {
	runner := sim.NewRunnerWith(2, sim.NewWorkloadCache())
	srv := serve.New(serve.Config{Backend: runner, MaxSyncPoints: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer runner.Close()

	out := filepath.Join(t.TempDir(), "explore.json")
	err := cmdExplore([]string{
		"-server", ts.URL, "-benches", "gzip",
		"-entries", "8,16,32,64", "-ways", "1", "-index", "preg,filtered",
		"-strategy", "halving", "-insts", "4000", "-min-insts", "1000",
		"-o", out,
	})
	if err != nil {
		t.Fatalf("cmdExplore: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("saved document: %v", err)
	}
	if err := reportExplore(data, ""); err != nil {
		t.Fatalf("saved document does not round-trip: %v", err)
	}

	// Explicit -async prints the job ID and returns without polling.
	if err := cmdExplore([]string{
		"-server", ts.URL, "-benches", "gzip", "-entries", "16", "-insts", "2000", "-async",
	}); err != nil {
		t.Fatalf("async cmdExplore: %v", err)
	}
}

// TestCmdExploreClientValidation: malformed axes and specs fail locally,
// before any request is sent.
func TestCmdExploreClientValidation(t *testing.T) {
	cases := [][]string{
		{},                                    // missing -entries
		{"-entries", "16:64"},                 // malformed range
		{"-entries", "x,y"},                   // malformed list
		{"-entries", "16", "-maxpregs", "a"},  // malformed optional axis
		{"-entries", "16", "-maxuse", "1:2"},  // malformed optional axis
		{"-entries", "16", "-strategy", "x"},  // unknown strategy
		{"-entries", "64:16:8"},               // inverted range
		{"-entries", "16", "-kinds", "quake"}, // unknown kind
	}
	for _, args := range cases {
		if err := cmdExplore(append([]string{"-server", "http://127.0.0.1:1"}, args...)); err == nil {
			t.Errorf("cmdExplore(%v): no error", args)
		}
	}
}
