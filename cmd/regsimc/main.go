// Command regsimc is the regsimd client: it submits sweep jobs, polls
// job status, and fetches results documents, so EXPERIMENTS.md recipes
// can run end-to-end against the daemon instead of cmd/experiments.
//
// Usage:
//
//	regsimc submit -server http://localhost:8080 -benches gzip,mcf -schemes use:64x2,mono:3
//	regsimc submit -benches all -schemes use:64x2:filtered -async
//	regsimc submit -server http://node1:8080,http://node2:8080 -benches all -schemes use:64x2
//	regsimc status -job j-1 -wait 5s
//	regsimc fetch  -job j-1 -o results.json
//
// Sync submissions print a per-run summary table and optionally save the
// results file with -o; async submissions print the job ID for later
// status/fetch calls.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"regcache/internal/fleet"
	"regcache/internal/obs"
	"regcache/internal/sim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "submit":
		err = cmdSubmit(os.Args[2:])
	case "explore":
		err = cmdExplore(os.Args[2:])
	case "status":
		err = cmdStatus(os.Args[2:])
	case "fetch":
		err = cmdFetch(os.Args[2:])
	case "help", "-h", "--help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "regsimc: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "regsimc: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `regsimc <submit|explore|status|fetch> [flags]

submit: POST a sweep (scheme x benchmark matrix) to regsimd
  -server URL   regsimd base URL (default http://localhost:8080); a
                comma-separated list selects fleet mode — the client
                scatters the sweep across the endpoints by consistent-
                hashing each point, hedges stragglers, and merges the
                partial results (no -async in fleet mode)
  -benches s    comma-separated benchmark names, or "all"
  -schemes s    comma-separated scheme specs (e.g. use:64x2:filtered,mono:3)
  -insts n      per-benchmark instruction budget (0 = server default)
  -threads n    multithreaded workload contexts per run (0/1 = single)
  -interleave n fetch-interleave granularity when -threads > 1
  -deadline d   per-request deadline (e.g. 30s)
  -async        request a job ID instead of waiting
  -timings      request per-point timing blocks and print a latency table
  -o file       save the results JSON (sync submissions)
  -max-retries n  retries on 429 load-shed, honouring Retry-After (413 is
                  permanent and never retried)

explore: POST a design-space search to regsimd and render the Pareto
frontier (see "regsimc explore -h" for the axis flags)
  -entries a    cache-entries axis: comma list (16,32,64) or min:max:step
  -ways a       associativity axis, same forms
  -kinds s      cache kinds to cross (use,lru,nb); default use
  -index s      index policies to cross (preg,rr,min,filtered); default filtered
  -maxpregs a   optional MaxPRegs axis, -maxuse a  optional MaxUse axis
  -ports a      optional backing read-port axis (0 = unported legacy)
  -threads a    optional workload thread-count axis (1..4)
  -strategy s   grid | halving
  -insts n      full budget; -min-insts n first-rung budget; -eta n cut factor
  -benches, -deadline, -async, -o, -max-retries as for submit

status: report a job's state
  -server URL, -job id, -wait d (long-poll up to d)

fetch: download a finished job's results document
  -server URL, -job id, -o file`)
}

// flagSet builds a subcommand flag set with the shared -server flag.
func flagSet(name string) (*flag.FlagSet, *string) {
	fs := flag.NewFlagSet("regsimc "+name, flag.ExitOnError)
	server := fs.String("server", "http://localhost:8080", "regsimd base URL")
	return fs, server
}

func cmdSubmit(args []string) error {
	fs, server := flagSet("submit")
	benches := fs.String("benches", "gzip", `comma-separated benchmarks, or "all"`)
	schemes := fs.String("schemes", "use:64x2:filtered", "comma-separated scheme specs")
	insts := fs.Uint64("insts", 0, "per-benchmark instruction budget (0 = server default)")
	intervals := fs.Int("intervals", 0, "checkpointed parallel intervals per run (0 = serial)")
	warmup := fs.Uint64("warmup", 0, "per-interval warm-up instructions (0 = server default when -intervals > 1)")
	threads := fs.Int("threads", 0, "multithreaded workload contexts per run (0/1 = single-context)")
	ilv := fs.Int("interleave", 0, "fetch-interleave granularity when -threads > 1 (0 = server default)")
	deadline := fs.Duration("deadline", 0, "per-request deadline (0 = server default)")
	async := fs.Bool("async", false, "submit asynchronously and print the job ID")
	timings := fs.Bool("timings", false, "request per-point timing breakdowns (queue wait, store lookup, simulate, stitch)")
	out := fs.String("o", "", "save the results JSON to this file")
	maxRetries := fs.Int("max-retries", 4, "retries when the server sheds load with 429 (0 = fail immediately)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	specs := splitList(*schemes)
	// Validate specs client-side for fast feedback (the server re-checks).
	for _, spec := range specs {
		if _, err := sim.ParseSchemeSpec(spec); err != nil {
			return err
		}
	}
	// A comma-separated -server list selects fleet mode: the client
	// scatters the sweep across the endpoints itself (consistent-hash
	// partitioning, hedged stragglers) instead of handing one node the
	// whole matrix.
	if servers := splitList(*server); len(servers) > 1 {
		if *async {
			return fmt.Errorf("-async is not supported with multiple -server endpoints (the client gathers synchronously)")
		}
		return submitFleet(servers, fleetSubmit{
			benches:   splitList(*benches),
			specs:     specs,
			insts:     *insts,
			intervals: *intervals,
			warmup:    *warmup,
			threads:   *threads,
			ilv:       *ilv,
			deadline:  *deadline,
			timings:   *timings,
			out:       *out,
		})
	}
	req := map[string]any{
		"benches": splitList(*benches),
		"schemes": specs,
		"insts":   *insts,
		"async":   *async,
	}
	if *intervals > 0 {
		req["intervals"] = *intervals
	}
	if *warmup > 0 {
		req["warmup_insts"] = *warmup
	}
	if *threads > 0 {
		req["threads"] = *threads
	}
	if *ilv > 0 {
		req["interleave"] = *ilv
	}
	if *deadline > 0 {
		req["deadline_ms"] = deadline.Milliseconds()
	}
	if *timings {
		req["timings"] = true
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, data, err := postJSON(*server, "/v1/sweep", body, *maxRetries)
	if err != nil {
		return err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return reportResults(data, *out)
	case http.StatusAccepted:
		var st struct {
			ID     string `json:"id"`
			Status string `json:"status"`
			Points int    `json:"points"`
		}
		if err := json.Unmarshal(data, &st); err != nil {
			return fmt.Errorf("parsing job response: %w", err)
		}
		fmt.Printf("job %s accepted (%d points, %s)\n", st.ID, st.Points, st.Status)
		fmt.Printf("poll:  regsimc status -server %s -job %s -wait 10s\n", *server, st.ID)
		fmt.Printf("fetch: regsimc fetch -server %s -job %s -o results.json\n", *server, st.ID)
		return nil
	default:
		return serverError(resp, data)
	}
}

// shedStatus reports whether a response status is a transient shed worth
// retrying: 429 (queue full) and 503 (draining — the node behind this
// URL is restarting; its successor will accept). Both carry Retry-After.
func shedStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// postJSON posts a request document, retrying up to maxRetries times when
// the server sheds load with 429 or refuses with a drain 503. Each wait
// honours the server's Retry-After hint when present (otherwise
// exponential backoff from 500ms), capped at 30s, with ±25% jitter so a
// fleet of shed clients does not re-arrive in lockstep. 413 (request can
// never fit the admission queue) is permanent and is never retried;
// neither is any other status — those are the caller's problem.
func postJSON(server, path string, body []byte, maxRetries int) (*http.Response, []byte, error) {
	const (
		baseBackoff = 500 * time.Millisecond
		maxBackoff  = 30 * time.Second
	)
	backoff := baseBackoff
	for attempt := 0; ; attempt++ {
		resp, err := http.Post(server+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, nil, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, nil, err
		}
		if !shedStatus(resp.StatusCode) || attempt >= maxRetries {
			return resp, data, nil
		}
		wait := backoff
		if d, ok := parseRetryAfter(resp.Header.Get("Retry-After")); ok {
			wait = d
		}
		if wait > maxBackoff {
			wait = maxBackoff
		}
		// Jitter to 75%..125% of the nominal wait.
		wait += time.Duration((rand.Float64() - 0.5) * 0.5 * float64(wait))
		// The shed response carries the server-assigned request ID; print
		// it so the retry can be matched to the server's flight recorder
		// and logs.
		reason := "busy (429"
		if resp.StatusCode == http.StatusServiceUnavailable {
			reason = "draining (503"
		}
		fmt.Fprintf(os.Stderr, "regsimc: server %s%s), retry %d/%d in %s\n",
			reason, requestIDSuffix(resp), attempt+1, maxRetries, wait.Round(10*time.Millisecond))
		time.Sleep(wait)
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// fleetSubmit carries a multi-endpoint submission's parameters.
type fleetSubmit struct {
	benches   []string
	specs     []string
	insts     uint64
	intervals int
	warmup    uint64
	threads   int
	ilv       int
	deadline  time.Duration
	timings   bool
	out       string
}

// submitFleet runs a sweep against a fleet of regsimd endpoints: the
// client itself consistent-hashes each point to its owner node, fans out
// leaf sub-sweeps, hedges stragglers, and merges the partials into the
// same byte-stable document any single node would have produced.
func submitFleet(servers []string, sub fleetSubmit) error {
	var schemes []sim.Scheme
	for _, spec := range sub.specs {
		sc, err := sim.ParseSchemeSpec(spec)
		if err != nil {
			return err
		}
		schemes = append(schemes, sc)
	}
	benches := sub.benches
	if len(benches) == 1 && benches[0] == "all" {
		benches = sim.Benchmarks()
	}
	co := fleet.New(fleet.Config{Endpoints: servers})
	ctx := context.Background()
	if sub.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, sub.deadline)
		defer cancel()
	}
	reqID := obs.NewRequestID()
	file, err := co.Run(ctx, fleet.SweepSpec{
		Schemes: schemes,
		Benches: benches,
		Opts: sim.Options{
			Insts:       sub.insts,
			Intervals:   sub.intervals,
			WarmupInsts: sub.warmup,
			Threads:     sub.threads,
			Interleave:  sub.ilv,
		},
		Timings: sub.timings,
	}, reqID)
	st := co.Stats()
	fmt.Fprintf(os.Stderr, "regsimc: fleet %d nodes, %d partitions, %d hedges (%d won), %d points store-resolved, req %s\n",
		len(co.Endpoints()), st.Partitions, st.Hedges, st.HedgeWins, st.PointsResolved, reqID)
	if err != nil {
		return err
	}
	data, err := json.Marshal(file)
	if err != nil {
		return err
	}
	return reportResults(data, sub.out)
}

// parseRetryAfter interprets a Retry-After header value per RFC 9110: a
// non-negative decimal number of seconds, or an HTTP-date after which the
// client may retry. A date in the past (or "0") means retry now, reported
// as a zero duration — distinct from the !ok of an absent or malformed
// header, which falls back to the client's own backoff.
func parseRetryAfter(ra string) (time.Duration, bool) {
	if ra == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(ra); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(ra); err == nil {
		d := time.Until(t)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

func cmdStatus(args []string) error {
	fs, server := flagSet("status")
	job := fs.String("job", "", "job ID")
	wait := fs.Duration("wait", 0, "long-poll up to this duration")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *job == "" {
		return fmt.Errorf("status needs -job")
	}
	url := fmt.Sprintf("%s/v1/jobs/%s", *server, *job)
	if *wait > 0 {
		url += "?wait=" + wait.String()
	}
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return serverError(resp, data)
	}
	fmt.Println(string(data))
	return nil
}

func cmdFetch(args []string) error {
	fs, server := flagSet("fetch")
	job := fs.String("job", "", "job ID")
	out := fs.String("o", "", "save the results JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *job == "" {
		return fmt.Errorf("fetch needs -job")
	}
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/results", *server, *job))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return reportResults(data, *out)
	case http.StatusAccepted:
		fmt.Printf("job %s still running: %s\n", *job, strings.TrimSpace(string(data)))
		return nil
	default:
		return serverError(resp, data)
	}
}

// reportResults prints a per-run summary table and optionally saves the
// raw document.
func reportResults(data []byte, out string) error {
	var f sim.ResultsFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("parsing results: %w", err)
	}
	if f.SchemaVersion != sim.ResultsSchemaVersion {
		return fmt.Errorf("results schema version %d, want %d", f.SchemaVersion, sim.ResultsSchemaVersion)
	}
	for _, r := range f.Runs {
		line := fmt.Sprintf("%-28s %-10s ipc %.3f", r.Scheme.Name, r.Bench, r.IPC)
		if r.Cache != nil {
			line += fmt.Sprintf("  miss %.4f", r.Cache.MissRate)
		}
		if t := r.Timing; t != nil {
			line += "  " + timingSummary(t)
		}
		fmt.Println(line)
	}
	fmt.Printf("%d runs\n", len(f.Runs))
	if out != "" {
		if err := os.WriteFile(out, append(bytes.TrimRight(data, "\n"), '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("saved %s\n", out)
	}
	return nil
}

// requestIDSuffix renders the server-assigned X-Request-Id as ", req ID"
// for splicing into diagnostics ("" when absent). Every regsimd response
// — including sheds — carries one; quoting it lets the operator jump
// straight to the matching trace in GET /debug/flight and the matching
// request_id in the daemon's logs.
func requestIDSuffix(resp *http.Response) string {
	if id := resp.Header.Get("X-Request-Id"); id != "" {
		return ", req " + id
	}
	return ""
}

func serverError(resp *http.Response, data []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(data))
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		msg = e.Error
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		// The header may be either seconds or an HTTP-date; report the
		// resolved wait rather than echoing the raw value with a bogus
		// unit suffix.
		if d, ok := parseRetryAfter(resp.Header.Get("Retry-After")); ok {
			msg += fmt.Sprintf(" (retry after %s)", d.Round(time.Second))
		}
	}
	return fmt.Errorf("server: %s%s: %s", resp.Status, requestIDSuffix(resp), msg)
}

// timingSummary renders a run's timing block as one compact column set:
// the outcome plus only the phases that apply to it (a coalesced point
// has no simulate time of its own, a store hit no stitch, etc.).
func timingSummary(t *sim.TimingRecord) string {
	parts := []string{t.Outcome, fmt.Sprintf("queue %.1fms", t.QueueWaitMS)}
	switch t.Outcome {
	case "store":
		parts = append(parts, fmt.Sprintf("lookup %.1fms", t.StoreLookupMS))
	case "simulated":
		parts = append(parts, fmt.Sprintf("sim %.1fms", t.SimMS))
		if t.StitchMS > 0 {
			parts = append(parts, fmt.Sprintf("stitch %.1fms", t.StitchMS))
		}
	}
	return strings.Join(parts, " ")
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
