// Command regsim runs a single register-caching simulation with full
// control over the machine configuration and prints the run summary.
// Simulations route through internal/sim's shared run layer, so -bench all
// executes the suite on the bounded worker pool and repeated invocations
// of the same configuration inside one process are memoized.
//
// Observability: -json writes a schema-versioned machine-readable results
// file, -trace captures a Chrome trace_event pipeline timeline (open in
// chrome://tracing or https://ui.perfetto.dev), -cachelog streams every
// register cache event as NDJSON for offline distribution analysis, and
// -http serves expvar metrics plus pprof profiles while the run executes.
//
// Examples:
//
//	regsim -bench gzip -n 300000
//	regsim -bench mcf -scheme mono -rflat 3
//	regsim -bench gcc -entries 32 -ways 4 -insert lru -index preg
//	regsim -bench vpr -scheme twolevel -l1 96
//	regsim -bench bzip2 -lifetimes
//	regsim -bench all -workers 4 -json out.json
//	regsim -bench gzip -n 50000 -trace timeline.json -cachelog cache.ndjson
//	regsim -bench all -http :6060
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"regcache/internal/core"
	"regcache/internal/obs"
	"regcache/internal/pipeline"
	"regcache/internal/prog"
	"regcache/internal/sim"
	"regcache/internal/store"
	"regcache/internal/twolevel"
)

func main() {
	var (
		bench     = flag.String("bench", "gzip", "benchmark name ("+strings.Join(prog.ProfileNames(), ",")+") or 'all'")
		n         = flag.Uint64("n", 200_000, "instructions to simulate per benchmark")
		intervals = flag.Int("intervals", 0, "simulate each run as this many checkpointed parallel intervals (0 = serial)")
		warmup    = flag.Uint64("warmup", 0, "per-interval warm-up instructions, discarded from counters (0 = default when -intervals > 1)")
		threads   = flag.Int("threads", 0, "multithreaded workload contexts per run (0/1 = single-context)")
		ilv       = flag.Int("interleave", 0, "fetch-interleave granularity in instructions when -threads > 1 (0 = default)")
		rports    = flag.Int("ports", 0, "backing-file read ports for cache schemes (0 = unported legacy model)")
		scheme    = flag.String("scheme", "cache", "register storage scheme: cache, mono, twolevel")
		rflat     = flag.Int("rflat", 3, "monolithic register file latency")
		backlat   = flag.Int("backlat", 2, "backing file latency")
		entries   = flag.Int("entries", 64, "register cache entries")
		ways      = flag.Int("ways", 2, "register cache associativity (0 = fully associative)")
		insert    = flag.String("insert", "use", "insertion policy: lru, nonbypass, use")
		index     = flag.String("index", "", "index scheme: preg, rr, min, filtered (default: filtered for use, rr otherwise)")
		l1        = flag.Int("l1", 96, "two-level scheme L1 file entries")
		l2lat     = flag.Int("l2lat", 2, "two-level scheme L2 latency")
		life      = flag.Bool("lifetimes", false, "report register lifetime phases and live-count distributions")
		verbose   = flag.Bool("v", false, "print detailed cache statistics")
		workers   = flag.Int("workers", runtime.NumCPU(), "simulation worker pool size (must be >= 1)")
		jsonOut   = flag.String("json", "", "write machine-readable results to this file")
		tracePath = flag.String("trace", "", "write a Chrome trace_event pipeline timeline to this file (single benchmark only)")
		cacheLog  = flag.String("cachelog", "", "write an NDJSON register cache event log to this file (single benchmark only)")
		httpAddr  = flag.String("http", "", "serve expvar metrics and pprof on this address (e.g. :6060)")
		storeDir  = flag.String("store", "", "durable result store directory; repeated runs are served from disk instead of re-simulating")
	)
	flag.Parse()

	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "invalid -workers %d: the pool needs at least one worker\n", *workers)
		flag.Usage()
		os.Exit(2)
	}
	if err := sim.ConfigureDefaultRunner(*workers); err != nil {
		fmt.Fprintf(os.Stderr, "configuring runner: %v\n", err)
		os.Exit(2)
	}
	var rstore *sim.ResultStore
	if *storeDir != "" {
		rs, err := sim.OpenResultStore(*storeDir, store.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "opening store: %v\n", err)
			os.Exit(2)
		}
		if err := sim.DefaultRunner().UseStore(rs); err != nil {
			fmt.Fprintf(os.Stderr, "attaching store: %v\n", err)
			os.Exit(2)
		}
		rstore = rs
	}

	s := sim.Scheme{RFLatency: *rflat, BackingLatency: *backlat}
	switch *scheme {
	case "cache":
		s.Kind = pipeline.SchemeCache
	case "mono", "monolithic":
		s.Kind = pipeline.SchemeMonolithic
	case "twolevel", "two-level":
		s.Kind = pipeline.SchemeTwoLevel
		s.TwoLevel = twolevel.Config{L1Entries: *l1, L2Latency: *l2lat}
	default:
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *scheme)
		os.Exit(2)
	}
	if s.Kind == pipeline.SchemeCache {
		cc := core.Config{Entries: *entries, Ways: *ways, ClassifyMisses: true}
		switch *insert {
		case "lru":
			cc.Insert, cc.Replace = core.InsertAlways, core.ReplaceLRU
		case "nonbypass", "nb":
			cc.Insert, cc.Replace = core.InsertNonBypass, core.ReplaceLRU
		case "use", "usebased":
			cc.Insert, cc.Replace = core.InsertUseBased, core.ReplaceUseBased
		default:
			fmt.Fprintf(os.Stderr, "unknown insertion policy %q\n", *insert)
			os.Exit(2)
		}
		idx := *index
		if idx == "" {
			if *insert == "use" {
				idx = "filtered"
			} else {
				idx = "rr"
			}
		}
		switch idx {
		case "preg":
			cc.Index = core.IndexPReg
		case "rr", "roundrobin":
			cc.Index = core.IndexRoundRobin
		case "min", "minimum":
			cc.Index = core.IndexMinimum
		case "filtered", "frr":
			cc.Index = core.IndexFilteredRR
		default:
			fmt.Fprintf(os.Stderr, "unknown index scheme %q\n", idx)
			os.Exit(2)
		}
		s.Cache = cc
		s.Name = fmt.Sprintf("%s-%dx%d-%s", *insert, *entries, *ways, cc.Index)
		if *rports > 0 {
			s.ReadPorts = *rports
			s.Name = fmt.Sprintf("%s-p%d", s.Name, *rports)
		}
	} else if *rports > 0 {
		fmt.Fprintln(os.Stderr, "-ports applies only to cache schemes (read-port filtering needs a register cache in front of the backing file)")
		os.Exit(2)
	} else {
		s.Name = *scheme
	}

	if *httpAddr != "" {
		dbg, err := obs.StartDebugServer(*httpAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
		sim.DefaultRunner().RegisterMetrics(obs.Default(), "runner")
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/vars (pprof at /debug/pprof/, metrics at /metrics)\n", dbg.Addr())
	}

	if *intervals < 0 {
		fmt.Fprintf(os.Stderr, "invalid -intervals %d: must be >= 0\n", *intervals)
		os.Exit(2)
	}
	if *life && *intervals > 1 {
		fmt.Fprintln(os.Stderr, "-lifetimes requires a serial run (lifetime tracking attaches to one pipeline); drop -intervals")
		os.Exit(2)
	}
	if *threads < 0 || *threads > sim.MaxThreads {
		fmt.Fprintf(os.Stderr, "invalid -threads %d: must be in [0, %d]\n", *threads, sim.MaxThreads)
		os.Exit(2)
	}
	if *ilv < 0 {
		fmt.Fprintf(os.Stderr, "invalid -interleave %d: must be >= 0\n", *ilv)
		os.Exit(2)
	}
	if *ilv > 0 && *threads <= 1 {
		fmt.Fprintln(os.Stderr, "-interleave requires -threads > 1")
		os.Exit(2)
	}
	if *threads > 1 && *intervals > 1 {
		fmt.Fprintln(os.Stderr, "-intervals checkpoints a single-context stream; drop it when running -threads > 1")
		os.Exit(2)
	}
	if *threads > 1 && *life {
		fmt.Fprintln(os.Stderr, "-lifetimes tracks a single-context pipeline; drop it when running -threads > 1")
		os.Exit(2)
	}
	opts := sim.Options{
		Insts:          *n,
		Intervals:      *intervals,
		WarmupInsts:    *warmup,
		Threads:        *threads,
		Interleave:     *ilv,
		TrackLifetimes: *life,
		TrackLive:      *life,
	}

	benches := []string{*bench}
	if *bench == "all" {
		benches = prog.ProfileNames()
	}
	tracing := *tracePath != "" || *cacheLog != ""
	if tracing && len(benches) > 1 {
		fmt.Fprintln(os.Stderr, "-trace/-cachelog require a single benchmark (trace files do not concatenate across runs)")
		os.Exit(2)
	}
	if tracing && *intervals > 1 {
		fmt.Fprintln(os.Stderr, "-trace/-cachelog require a serial run (trace events do not interleave across intervals); drop -intervals")
		os.Exit(2)
	}
	direct := *life || tracing // paths that need the pipeline object itself
	if !direct {
		// Warm the pool so -bench all runs the suite in parallel; the
		// in-order printing loop below then collects memoized results.
		sim.Prefetch(benches, []sim.Scheme{s}, opts)
	}
	start := time.Now()
	var records []sim.RunRecord
	exit := 0
	for _, name := range benches {
		var r pipeline.Result
		var err error
		if direct {
			// Lifetime histograms and event traces live on the pipeline
			// object, which the memoized Result cannot carry: build the
			// pipeline directly.
			r, err = runDirect(name, s, opts, *n, *tracePath, *cacheLog, *life, *verbose, *httpAddr != "")
			if err == nil {
				records = append(records, sim.NewRunRecord(name, s, opts, r))
				continue
			}
		} else {
			r, err = sim.Run(name, s, opts)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			exit = 2
			continue
		}
		records = append(records, sim.NewRunRecord(name, s, opts, r))
		printRun(name, r, s, *verbose)
		fmt.Println()
	}
	if *jsonOut != "" {
		f := sim.NewResultsFile("regsim", records, sim.DefaultRunner(), time.Since(start))
		if err := sim.WriteResults(*jsonOut, f); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			exit = 2
		}
	}
	if rstore != nil {
		// os.Exit skips defers: drain the runner's store flush queue and
		// release the writer lock explicitly so this run's results are on
		// disk for the next invocation.
		sim.DefaultRunner().Close()
		if err := rstore.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "closing store: %v\n", err)
			exit = 2
		}
	}
	os.Exit(exit)
}

// runDirect executes one benchmark on a directly constructed pipeline so
// tracers and lifetime histograms can attach, then prints the summary.
func runDirect(name string, s sim.Scheme, opts sim.Options, n uint64, tracePath, cacheLog string, life, verbose, httpOn bool) (pipeline.Result, error) {
	pl, err := sim.RunPipeline(name, s, opts)
	if err != nil {
		return pipeline.Result{}, err
	}
	var tracers []obs.Tracer
	var chrome *obs.ChromeTrace
	var clog *obs.CacheLog
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return pipeline.Result{}, err
		}
		defer f.Close()
		chrome = obs.NewChromeTrace(f, true)
		tracers = append(tracers, chrome)
	}
	if cacheLog != "" {
		f, err := os.Create(cacheLog)
		if err != nil {
			return pipeline.Result{}, err
		}
		defer f.Close()
		clog = obs.NewCacheLog(f)
		tracers = append(tracers, clog)
	}
	pl.SetTracer(obs.Combine(tracers...))
	if httpOn {
		pl.RegisterMetrics(obs.Default(), "pipeline")
	}
	r := pl.Run(n)
	if chrome != nil {
		if err := chrome.Close(); err != nil {
			return pipeline.Result{}, err
		}
		fmt.Fprintf(os.Stderr, "%s: wrote %s (%d uop lanes)\n", name, tracePath, chrome.Lanes())
	}
	if clog != nil {
		if err := clog.Close(); err != nil {
			return pipeline.Result{}, err
		}
		fmt.Fprintf(os.Stderr, "%s: wrote %s (evict remaining-use dist: %s)\n", name, cacheLog, clog.EvictUses())
	}
	printRun(name, r, s, verbose)
	if life {
		if lt := pl.Lifetimes(); lt != nil {
			fmt.Printf("lifetime phases (median cycles): empty %d, live %d, dead %d\n",
				lt.Empty.Median(), lt.Live.Median(), lt.Dead.Median())
			alloc, liveD := lt.AllocatedDist(), lt.LiveDist()
			fmt.Printf("allocated regs: p50 %d p90 %d; live values: p50 %d p90 %d\n",
				alloc.Median(), alloc.Percentile(0.9), liveD.Median(), liveD.Percentile(0.9))
		}
	}
	fmt.Println()
	return r, nil
}

func printRun(name string, r pipeline.Result, s sim.Scheme, verbose bool) {
	fmt.Printf("== %s ==\n%s", name, r)
	for _, ts := range r.Threads {
		fmt.Printf("thread %d: retired %d, squashed %d, mispredicts %d, cache %d/%d hits, port stalls %d\n",
			ts.Thread, ts.Retired, ts.Squashed, ts.Mispredicts, ts.CacheHits, ts.CacheReads, ts.PortConflictStalls)
	}
	if r.Stats.PortConflictStalls > 0 {
		fmt.Printf("port-conflict stalls: %d\n", r.Stats.PortConflictStalls)
	}
	if verbose && s.Kind == pipeline.SchemeCache {
		fmt.Print(r.Cache.String())
		fmt.Printf("occupancy %.1f entries, entry lifetime %.1f cycles, zero-use victims %.1f%%\n",
			r.Cache.MeanOccupancy(r.Stats.Cycles), r.Cache.MeanEntryLifetime(),
			100*r.Cache.FracVictimsZeroUse())
	}
}
