// Command regsim runs a single register-caching simulation with full
// control over the machine configuration and prints the run summary.
//
// Examples:
//
//	regsim -bench gzip -n 300000
//	regsim -bench mcf -scheme mono -rflat 3
//	regsim -bench gcc -entries 32 -ways 4 -insert lru -index preg
//	regsim -bench vpr -scheme twolevel -l1 96
//	regsim -bench bzip2 -lifetimes
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"regcache/internal/core"
	"regcache/internal/pipeline"
	"regcache/internal/prog"
)

func main() {
	var (
		bench   = flag.String("bench", "gzip", "benchmark name ("+strings.Join(prog.ProfileNames(), ",")+") or 'all'")
		n       = flag.Uint64("n", 200_000, "instructions to simulate per benchmark")
		scheme  = flag.String("scheme", "cache", "register storage scheme: cache, mono, twolevel")
		rflat   = flag.Int("rflat", 3, "monolithic register file latency")
		backlat = flag.Int("backlat", 2, "backing file latency")
		entries = flag.Int("entries", 64, "register cache entries")
		ways    = flag.Int("ways", 2, "register cache associativity (0 = fully associative)")
		insert  = flag.String("insert", "use", "insertion policy: lru, nonbypass, use")
		index   = flag.String("index", "", "index scheme: preg, rr, min, filtered (default: filtered for use, rr otherwise)")
		l1      = flag.Int("l1", 96, "two-level scheme L1 file entries")
		l2lat   = flag.Int("l2lat", 2, "two-level scheme L2 latency")
		life    = flag.Bool("lifetimes", false, "report register lifetime phases and live-count distributions")
		verbose = flag.Bool("v", false, "print detailed cache statistics")
	)
	flag.Parse()

	cfg := pipeline.DefaultConfig()
	cfg.RFLatency = *rflat
	cfg.BackingLatency = *backlat
	switch *scheme {
	case "cache":
		cfg.Scheme = pipeline.SchemeCache
	case "mono", "monolithic":
		cfg.Scheme = pipeline.SchemeMonolithic
	case "twolevel", "two-level":
		cfg.Scheme = pipeline.SchemeTwoLevel
		cfg.TwoLevelCfg.L1Entries = *l1
		cfg.TwoLevelCfg.L2Latency = *l2lat
	default:
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *scheme)
		os.Exit(2)
	}
	if cfg.Scheme == pipeline.SchemeCache {
		cc := core.Config{Entries: *entries, Ways: *ways, ClassifyMisses: true}
		switch *insert {
		case "lru":
			cc.Insert, cc.Replace = core.InsertAlways, core.ReplaceLRU
		case "nonbypass", "nb":
			cc.Insert, cc.Replace = core.InsertNonBypass, core.ReplaceLRU
		case "use", "usebased":
			cc.Insert, cc.Replace = core.InsertUseBased, core.ReplaceUseBased
		default:
			fmt.Fprintf(os.Stderr, "unknown insertion policy %q\n", *insert)
			os.Exit(2)
		}
		idx := *index
		if idx == "" {
			if *insert == "use" {
				idx = "filtered"
			} else {
				idx = "rr"
			}
		}
		switch idx {
		case "preg":
			cc.Index = core.IndexPReg
		case "rr", "roundrobin":
			cc.Index = core.IndexRoundRobin
		case "min", "minimum":
			cc.Index = core.IndexMinimum
		case "filtered", "frr":
			cc.Index = core.IndexFilteredRR
		default:
			fmt.Fprintf(os.Stderr, "unknown index scheme %q\n", idx)
			os.Exit(2)
		}
		cfg.CacheCfg = cc
	}
	cfg.TrackLifetimes = *life
	cfg.TrackLiveCounts = *life

	benches := []string{*bench}
	if *bench == "all" {
		benches = prog.ProfileNames()
	}
	for _, name := range benches {
		prof, ok := prog.ProfileByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", name)
			os.Exit(2)
		}
		pl := pipeline.New(cfg, prog.MustGenerate(prof))
		r := pl.Run(*n)
		fmt.Printf("== %s ==\n%s", name, r)
		if *verbose && cfg.Scheme == pipeline.SchemeCache {
			fmt.Print(r.Cache.String())
			fmt.Printf("occupancy %.1f entries, entry lifetime %.1f cycles, zero-use victims %.1f%%\n",
				r.Cache.MeanOccupancy(r.Stats.Cycles), r.Cache.MeanEntryLifetime(),
				100*r.Cache.FracVictimsZeroUse())
		}
		if *life && pl.Lifetimes() != nil {
			lt := pl.Lifetimes()
			fmt.Printf("lifetime phases (median cycles): empty %d, live %d, dead %d\n",
				lt.Empty.Median(), lt.Live.Median(), lt.Dead.Median())
			alloc, liveD := lt.AllocatedDist(), lt.LiveDist()
			fmt.Printf("allocated regs: p50 %d p90 %d; live values: p50 %d p90 %d\n",
				alloc.Median(), alloc.Percentile(0.9), liveD.Median(), liveD.Percentile(0.9))
		}
		fmt.Println()
	}
}
