// Lifetime analysis: reproduce the Section 2 motivation (Figures 1-2).
// Physical register lifetimes split into empty, live, and dead phases;
// values are only readable during the short live phase, so the number of
// simultaneously *live* values is far smaller than the number of allocated
// physical registers — which is why a small register cache can supply most
// operands.
//
// Run with: go run ./examples/lifetime_analysis
package main

import (
	"fmt"
	"log"

	"regcache/internal/core"
	"regcache/internal/sim"
	"regcache/internal/stats"
)

func main() {
	const insts = 150_000
	benches := []string{"gzip", "gcc", "mcf", "twolf"}

	tb := stats.NewTable("bench", "empty p50", "live p50", "dead p50", "alloc p50", "alloc p90", "live-vals p50", "live-vals p90")
	allocAll, liveAll := stats.NewHistogram(), stats.NewHistogram()
	for _, b := range benches {
		pl, err := sim.RunPipeline(b, sim.UseBased(64, 2, core.IndexFilteredRR),
			sim.Options{Insts: insts, TrackLifetimes: true, TrackLive: true})
		if err != nil {
			log.Fatal(err)
		}
		pl.Run(insts)
		lt := pl.Lifetimes()
		alloc, live := lt.AllocatedDist(), lt.LiveDist()
		allocAll.Merge(alloc)
		liveAll.Merge(live)
		tb.AddRow(b,
			fmt.Sprint(lt.Empty.Median()), fmt.Sprint(lt.Live.Median()), fmt.Sprint(lt.Dead.Median()),
			fmt.Sprint(alloc.Median()), fmt.Sprint(alloc.Percentile(0.9)),
			fmt.Sprint(live.Median()), fmt.Sprint(live.Percentile(0.9)))
	}
	fmt.Print(tb)
	fmt.Printf("\nsuite: %d registers allocated at the median, but only %d values live;\n",
		allocAll.Median(), liveAll.Median())
	fmt.Printf("90%% of the time %d storage locations hold every live value\n",
		liveAll.Percentile(0.9))
	fmt.Println("(the paper measures 56 for SPECint 2000 — the motivation for a")
	fmt.Println("small register cache backed by a slower full-size file)")
}
