// Indexing study: reproduce the Section 4 / Figure 7 comparison — how the
// register cache set is chosen matters. Standard indexing derives the set
// from physical register tag bits, which are freelist-arbitrary; decoupled
// indexing assigns the set at rename time by policy. This example sweeps
// all four index schemes across associativities on a conflict-prone
// workload and reports conflict misses and IPC.
//
// Run with: go run ./examples/indexing_study
package main

import (
	"fmt"
	"log"

	"regcache/internal/core"
	"regcache/internal/sim"
	"regcache/internal/stats"
)

func main() {
	const bench = "bzip2" // long loops, heavy set pressure
	const insts = 200_000

	indexes := []core.IndexScheme{
		core.IndexPReg, core.IndexRoundRobin, core.IndexMinimum, core.IndexFilteredRR,
	}

	fmt.Printf("benchmark %s, %d instructions, 64-entry use-based caches\n\n", bench, insts)
	for _, ways := range []int{1, 2, 4} {
		tb := stats.NewTable("index", "IPC", "conflict misses/operand", "total miss rate")
		var basePReg float64
		for _, idx := range indexes {
			r, err := sim.Run(bench, sim.UseBased(64, ways, idx), sim.Options{Insts: insts})
			if err != nil {
				log.Fatal(err)
			}
			if idx == core.IndexPReg {
				basePReg = r.Cache.MissRateBy(core.MissConflict)
			}
			reduction := ""
			if idx != core.IndexPReg && basePReg > 0 {
				reduction = fmt.Sprintf(" (%+.0f%%)", -100*(1-r.Cache.MissRateBy(core.MissConflict)/basePReg))
			}
			tb.AddRow(idx.String(), fmt.Sprintf("%.3f", r.IPC),
				fmt.Sprintf("%.4f%s", r.Cache.MissRateBy(core.MissConflict), reduction),
				fmt.Sprintf("%.4f", r.Cache.MissRate()))
		}
		fmt.Printf("%d-way:\n%s\n", ways, tb)
	}
	fmt.Println("Expected shape (Figure 7): the use-aware policies (filtered")
	fmt.Println("round-robin, minimum) cut conflict misses the most; plain")
	fmt.Println("round-robin still beats preg bits; gains shrink as associativity")
	fmt.Println("rises because conflicts matter less.")
}
