// Quickstart: simulate one benchmark on the paper's proposed design — a
// 64-entry, two-way set-associative register cache with use-based insertion
// and replacement and filtered round-robin decoupled indexing — and compare
// it against the machine it replaces, a 3-cycle monolithic register file.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"regcache/internal/core"
	"regcache/internal/sim"
)

func main() {
	const bench = "gzip"
	const insts = 200_000

	// The baseline: no register cache, 3-cycle monolithic register file
	// with a two-stage bypass network (Section 5.1).
	baseline, err := sim.Run(bench, sim.Monolithic(3), sim.Options{Insts: insts})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's design point (Section 5.3): 64 entries, 2 ways,
	// use-based management, filtered round-robin indexing, 2-cycle
	// backing file.
	cached, err := sim.Run(bench, sim.UseBased(64, 2, core.IndexFilteredRR), sim.Options{Insts: insts})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s, %d instructions\n\n", bench, insts)
	fmt.Printf("3-cycle register file : IPC %.3f\n", baseline.IPC)
	fmt.Printf("use-based 64x2 cache  : IPC %.3f (%+.1f%%)\n\n",
		cached.IPC, 100*(cached.IPC/baseline.IPC-1))

	fmt.Printf("register cache behaviour:\n")
	fmt.Printf("  hit rate            %.1f%%\n", 100*cached.Cache.HitRate())
	fmt.Printf("  operands bypassed   %.1f%%\n", 100*cached.BypassFrac)
	fmt.Printf("  writes filtered     %.1f%%\n", 100*cached.Cache.FracWritesFiltered())
	fmt.Printf("  zero-use victims    %.1f%%\n", 100*cached.Cache.FracVictimsZeroUse())
	fmt.Printf("  use pred. accuracy  %.1f%%\n", 100*cached.UsePredAccuracy)
	fmt.Printf("  backing file reads  %.3f/cycle (single read port suffices)\n", cached.RFReadBW)
}
