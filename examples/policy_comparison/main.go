// Policy comparison: reproduce the Section 5.4 characterization on one
// memory-bound workload — the three register cache management policies
// (LRU, non-bypass, use-based) at the same 64-entry two-way geometry,
// reporting the Table 2 metrics, the Figure 8 miss breakdown, and IPC.
//
// Run with: go run ./examples/policy_comparison
package main

import (
	"fmt"
	"log"

	"regcache/internal/core"
	"regcache/internal/sim"
	"regcache/internal/stats"
)

func main() {
	const bench = "twolf"
	const insts = 200_000

	schemes := []struct {
		name string
		sc   sim.Scheme
	}{
		// Reference designs use round-robin decoupled indexing; the
		// use-based design uses filtered round-robin (Section 5.4).
		{"LRU", sim.LRU(64, 2, core.IndexRoundRobin)},
		{"non-bypass", sim.NonBypass(64, 2, core.IndexRoundRobin)},
		{"use-based", sim.UseBased(64, 2, core.IndexFilteredRR)},
	}

	fmt.Printf("benchmark %s, %d instructions, 64-entry 2-way register caches\n\n", bench, insts)
	tb := stats.NewTable("metric", "LRU", "non-bypass", "use-based")
	rows := map[string][]string{}
	order := []string{
		"IPC",
		"miss rate (per operand)",
		"  filtered misses",
		"  capacity misses",
		"  conflict misses",
		"reads per cached value",
		"times each value cached",
		"cache occupancy (entries)",
		"entry lifetime (cycles)",
		"cached but never read",
		"initial writes filtered",
	}
	for _, s := range schemes {
		r, err := sim.Run(bench, s.sc, sim.Options{Insts: insts})
		if err != nil {
			log.Fatal(err)
		}
		c := r.Cache
		add := func(k, v string) { rows[k] = append(rows[k], v) }
		add("IPC", fmt.Sprintf("%.3f", r.IPC))
		add("miss rate (per operand)", fmt.Sprintf("%.4f", c.MissRate()))
		add("  filtered misses", fmt.Sprintf("%.4f", c.MissRateBy(core.MissFiltered)))
		add("  capacity misses", fmt.Sprintf("%.4f", c.MissRateBy(core.MissCapacity)))
		add("  conflict misses", fmt.Sprintf("%.4f", c.MissRateBy(core.MissConflict)))
		add("reads per cached value", fmt.Sprintf("%.2f", c.ReadsPerCachedValue()))
		add("times each value cached", fmt.Sprintf("%.2f", c.CacheCount()))
		add("cache occupancy (entries)", fmt.Sprintf("%.1f", c.MeanOccupancy(r.Stats.Cycles)))
		add("entry lifetime (cycles)", fmt.Sprintf("%.1f", c.MeanEntryLifetime()))
		add("cached but never read", fmt.Sprintf("%.1f%%", 100*c.FracCachedNeverRead()))
		add("initial writes filtered", fmt.Sprintf("%.1f%%", 100*c.FracWritesFiltered()))
	}
	for _, k := range order {
		tb.AddRow(append([]string{k}, rows[k]...)...)
	}
	fmt.Print(tb)
	fmt.Println("\nExpected shape (paper Table 2 / Figure 8): use-based has the most")
	fmt.Println("reads per cached value and the longest entry lifetimes, the lowest")
	fmt.Println("cache count and occupancy, and a substantially lower miss rate;")
	fmt.Println("non-bypass over-filters and its total misses exceed LRU at this size.")
}
